#pragma once

/// \file experiment.hpp
/// \brief The closed-loop Table-I experiment: a vehicle races N timed laps
/// on a generated track, a pure-pursuit controller steers it using the pose
/// *estimated by the localizer under test*, and the harness collects the
/// paper's accuracy proxies. The grip coefficient mu is the independent
/// variable (HQ vs LQ odometry).

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "control/pure_pursuit.hpp"
#include "control/speed_profile.hpp"
#include "core/localizer.hpp"
#include "eval/metrics.hpp"
#include "eval/trace.hpp"
#include "gridmap/track_generator.hpp"
#include "sensor/lidar_sim.hpp"
#include "track/raceline.hpp"
#include "vehicle/sensors.hpp"
#include "vehicle/vehicle_sim.hpp"

namespace srl {

struct ExperimentConfig {
  double mu = 0.76;        ///< grip: ~0.76 HQ (26 N pull), ~0.55 LQ (19 N)
  int laps = 10;           ///< timed laps (out-lap excluded)
  double sim_dt = 0.0025;  ///< physics step, s (400 Hz)
  double odom_rate_hz = 100.0;
  double lidar_rate_hz = 40.0;
  double control_rate_hz = 50.0;
  double max_sim_time = 300.0;      ///< s, safety cutoff
  double align_tolerance = 0.06;    ///< m, scan-alignment wall tolerance
  double crash_wall_distance = 0.08;  ///< m, true pose closer => crash
  /// Out-lap launch ramp: the speed command scales linearly from 0 to 1
  /// over this many seconds, like a driver easing onto pace before the
  /// timed laps. Applies identically to every localizer under test.
  double launch_ramp_s = 3.0;
  std::uint64_t seed = 1234;
  /// Scripted kidnaps: at `t` the *true* vehicle is teleported (at rest) to
  /// the race line point `advance_frac` of a lap ahead of its current arc
  /// position, offset `lateral_m` along the local normal and `yaw` in
  /// heading. The localizer is NOT told — recovering is its problem.
  struct KidnapSpec {
    double t{0.0};
    double advance_frac{0.5};
    double lateral_m{0.0};
    double yaw{0.0};
  };
  std::vector<KidnapSpec> kidnaps{};
  /// Divergence-episode bookkeeping on the true-pose estimate error:
  /// an episode opens after `divergence_dwell` consecutive scans with
  /// error > `divergence_open_m` and closes after the same dwell below
  /// `divergence_close_m` (hysteresis so the boundary cannot chatter).
  double divergence_open_m = 1.0;
  double divergence_close_m = 0.5;
  int divergence_dwell = 2;
  /// Settling time after an episode closes before lateral samples count as
  /// "post-recovery" (the controller needs a moment to rejoin the line).
  double recovery_settle_s = 1.0;
  VehicleParams vehicle{};   ///< mu is overridden by `mu`
  LidarConfig lidar{};
  LidarNoise lidar_noise{};
  WheelOdometryNoise odom_noise{};
  SpeedProfileParams profile{};
  PurePursuitParams pursuit{};
  /// Optional race line override (e.g. from track/raceline_optimizer.hpp);
  /// when empty, the track centerline is raced. Lateral error is measured
  /// against whichever line is driven — the paper's "ideal race line".
  std::vector<Vec2> raceline_override{};
};

struct ExperimentResult {
  std::vector<double> lap_times;            ///< s, per timed lap
  std::vector<double> lap_lateral_mean_cm;  ///< per-lap mean |lateral error|
  double lap_time_mean{0.0};
  double lap_time_std{0.0};
  double lateral_mean_cm{0.0};   ///< mean of per-lap means (paper's mu)
  double lateral_std_cm{0.0};    ///< std across per-lap means (paper's sigma)
  double scan_alignment{0.0};    ///< %, averaged over timed-lap scans
  double load_percent{0.0};      ///< localizer busy / simulated time * 100
  double mean_update_ms{0.0};    ///< mean localizer scan-update latency
  /// Scan-update latency distribution, timed around every on_scan call by
  /// the harness (telemetry::Histogram percentiles) — how Table-I latency
  /// is reported now, instead of the mean alone.
  double update_p50_ms{0.0};
  double update_p95_ms{0.0};
  double update_p99_ms{0.0};
  double update_max_ms{0.0};
  double pose_rmse_m{0.0};       ///< true-vs-estimated position RMSE
  double pose_lat_rmse_m{0.0};   ///< component normal to the race line
  double pose_long_rmse_m{0.0};  ///< component along the race line
  double heading_rmse_rad{0.0};  ///< heading estimate error
  double mean_abs_slip{0.0};     ///< m/s, mean |wheel slip| (diagnostic)
  double odom_drift_m_per_lap{0.0};  ///< dead-reckoning drift (diagnostic)
  bool crashed{false};
  double sim_time{0.0};
  bool completed{false};  ///< all requested laps finished without crash

  // Divergence/recovery bookkeeping (kidnap & blackout scenarios).
  int kidnaps_applied{0};
  int divergence_episodes{0};  ///< episodes opened (error hysteresis)
  int recoveries{0};           ///< episodes closed again
  std::vector<double> time_to_relocalize_s;  ///< per closed episode
  double time_to_relocalize_mean_s{0.0};
  double time_to_relocalize_max_s{0.0};
  /// Mean |lateral| over control ticks after the first episode opened
  /// (what the divergence cost, recovered or not).
  double post_divergence_lateral_cm{0.0};
  /// Mean |lateral| over control ticks once every episode has closed and
  /// `recovery_settle_s` has passed (how clean the recovered line is).
  double post_recovery_lateral_cm{0.0};
  double final_pose_error_m{0.0};  ///< estimate error at the last scan
  /// No crash and every divergence episode closed (vacuously true when no
  /// episode ever opened).
  bool recovered{true};
};

class ExperimentRunner {
 public:
  ExperimentRunner(const Track& track, ExperimentConfig config);

  /// Race `localizer` through the configured laps. The localizer must have
  /// been built over this track's map. If `record` is non-null, every
  /// odometry increment and scan (with ground truth) is captured for
  /// later open-loop replay (eval/trace.hpp). A non-empty telemetry `sink`
  /// is attached to the localizer (per-stage histograms, health gauges,
  /// spans); update-latency percentiles are filled into the result either
  /// way.
  ExperimentResult run(Localizer& localizer, SensorTrace* record = nullptr,
                       telemetry::Sink sink = {});

  /// Start pose used for every run (on the race line, facing forward).
  Pose2 start_pose() const;
  const Raceline& raceline() const { return raceline_; }
  const SpeedProfile& profile() const { return profile_; }

 private:
  const Track& track_;
  ExperimentConfig config_;
  Raceline raceline_;
  SpeedProfile profile_;
  ScanAlignmentScorer alignment_;
  DistanceField wall_distance_;
  std::shared_ptr<const RangeMethod> truth_caster_;
};

}  // namespace srl
