#include "eval/scenario_matrix.hpp"

#include <algorithm>
#include <memory>

#include "common/json.hpp"
#include "common/parallel.hpp"
#include "core/synpf.hpp"
#include "eval/postmortem.hpp"
#include "fault/faulted_localizer.hpp"
#include "governor/governor.hpp"
#include "recovery/supervised_localizer.hpp"
#include "slam/pure_localization.hpp"
#include "telemetry/telemetry.hpp"

namespace srl {

std::string ScenarioSpec::label() const {
  return fault + "@" + json::format_number(severity);
}

ScenarioMatrix::ScenarioMatrix(ScenarioMatrixConfig config)
    : config_{std::move(config)} {}

namespace {

constexpr const char* kRecoverySuffix = "+Recovery";
constexpr const char* kGovernorSuffix = "+Governor";
constexpr const char* kBudgetSuffix = "+Budget";

bool has_suffix(const std::string& kind, const std::string& suffix) {
  return kind.size() > suffix.size() &&
         kind.compare(kind.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string strip_suffix(const std::string& kind, const std::string& suffix) {
  return has_suffix(kind, suffix)
             ? kind.substr(0, kind.size() - suffix.size())
             : kind;
}

/// Governor wrapper requested by the kind name: "" none, "govern" shedding
/// mode ("+Governor"), "enforce" budget-enforcer mode ("+Budget"). The
/// governor is the outermost decorator, so its suffix is named last.
std::string governor_mode(const std::string& kind) {
  if (has_suffix(kind, kGovernorSuffix)) return "govern";
  if (has_suffix(kind, kBudgetSuffix)) return "enforce";
  return "";
}

/// Kind with any governor suffix removed ("SynPF+Recovery+Governor" ->
/// "SynPF+Recovery").
std::string ungoverned_kind(const std::string& kind) {
  return strip_suffix(strip_suffix(kind, kGovernorSuffix), kBudgetSuffix);
}

bool wants_recovery(const std::string& kind) {
  return has_suffix(ungoverned_kind(kind), kRecoverySuffix);
}

std::string base_kind(const std::string& kind) {
  return strip_suffix(ungoverned_kind(kind), kRecoverySuffix);
}

std::unique_ptr<Localizer> make_localizer(
    const std::string& kind, const std::shared_ptr<const OccupancyGrid>& map,
    const LidarConfig& lidar, const ScenarioMatrixConfig& config) {
  if (kind == "SynPF") {
    SynPfConfig cfg;
    cfg.range = RangeMethodKind::kCddt;  // fast construction for grids
    cfg.filter.n_particles = config.n_particles;
    cfg.filter.n_threads = config.cell_threads;
    return std::make_unique<SynPf>(cfg, map, lidar);
  }
  if (kind == "CartoLite") {
    return std::make_unique<CartoLocalizer>(PureLocalizationOptions{}, map,
                                            lidar);
  }
  return nullptr;
}

double hist_quantile(const telemetry::MetricsRegistry& metrics,
                     const char* name, double q) {
  const telemetry::Histogram* h = metrics.find_histogram(name);
  return h != nullptr ? h->percentile(q) : 0.0;
}

std::uint64_t counter_value(const telemetry::MetricsRegistry& metrics,
                            const char* name) {
  const telemetry::Counter* c = metrics.find_counter(name);
  return c != nullptr ? c->value() : 0;
}

}  // namespace

std::vector<ScenarioCell> ScenarioMatrix::run(const Track& track) const {
  auto map = std::make_shared<const OccupancyGrid>(track.grid);

  // Materialize the grid localizer-major so cell index -> (localizer,
  // scenario) is a pure function of the config.
  std::vector<ScenarioCell> cells;
  for (const std::string& localizer : config_.localizers) {
    for (const ScenarioSpec& spec : config_.scenarios) {
      ScenarioCell cell;
      cell.localizer = localizer;
      cell.scenario = spec;
      cells.push_back(std::move(cell));
    }
  }

  // Every cell is an independent deterministic simulation (own localizer,
  // own pipeline, own runner, seeded from the config), so fanning out over
  // the pool cannot change any cell's bits — only wall-clock.
  ThreadPool pool{config_.matrix_threads};
  pool.parallel_for(cells.size(), [&](int /*lane*/, std::size_t begin,
                                      std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      ScenarioCell& cell = cells[i];
      ExperimentConfig experiment = config_.experiment;
      experiment.seed = config_.seed;

      fault::FaultPipeline pipeline{config_.fault_seed, experiment.lidar};
      if (cell.scenario.fault == "kidnap") {
        // Pseudo-fault: no sensor corruption — the true vehicle teleports.
        ExperimentConfig::KidnapSpec kidnap;
        kidnap.t = config_.kidnap_time;
        kidnap.advance_frac = config_.kidnap_advance * cell.scenario.severity;
        experiment.kidnaps.push_back(kidnap);
        // Run the clock out instead of stopping at the lap budget, so the
        // post-kidnap recovery (or failure to recover) is fully observed.
        experiment.laps = 1000000;
      } else if (cell.scenario.fault != "none" ||
                 cell.scenario.severity != 0.0) {
        pipeline.add(cell.scenario.fault, cell.scenario.severity);
      }

      std::unique_ptr<Localizer> localizer =
          make_localizer(base_kind(cell.localizer), map, experiment.lidar,
                         config_);
      if (localizer == nullptr) continue;  // unknown kind: zeroed cell
      auto* synpf = dynamic_cast<SynPf*>(localizer.get());
      fault::FaultedLocalizer faulted{*localizer, pipeline};

      // Canonical composition: supervise *outside* the faults, so sensor
      // corruption reaches the filter upstream of divergence detection.
      std::unique_ptr<recovery::SupervisedLocalizer> supervised;
      Localizer* subject = &faulted;
      if (wants_recovery(cell.localizer)) {
        recovery::SupervisedLocalizerConfig scfg;
        supervised = std::make_unique<recovery::SupervisedLocalizer>(
            faulted, scfg, map, experiment.lidar);
        if (synpf != nullptr) supervised->bind_filter(&synpf->filter());
        subject = supervised.get();
      }

      // Governor outermost (DESIGN.md §16): it reads the supervisor's
      // health and can veto the whole update before any inner layer runs.
      const std::string gov_mode = governor_mode(cell.localizer);
      std::unique_ptr<governor::GovernedLocalizer> governed;
      if (!gov_mode.empty()) {
        governor::GovernorConfig gcfg;
        gcfg.budget_ms = config_.budget_ms;
        gcfg.shed = gov_mode == "govern";
        gcfg.adaptive = gcfg.shed;  // enforcer keeps the workload fixed
        // Knobless localizers (no bound filter) are accounted at the
        // pinned nominal cost; ignored once a filter is bound.
        gcfg.nominal_cost_units = governor::kCartoNominalCostUnits;
        governed =
            std::make_unique<governor::GovernedLocalizer>(*subject, gcfg);
        if (synpf != nullptr) governed->bind_filter(&synpf->filter());
        governed->bind_pressure(&pipeline);
        if (supervised != nullptr) governed->bind_supervisor(supervised.get());
        subject = governed.get();
      }

      telemetry::Telemetry telemetry;
      telemetry::Sink sink = telemetry.sink();

      // Flight recorder: black boxes carry the cell's rebuild recipe plus a
      // per-tick enrichment probe over the live stack (pure observers all
      // the way down, so attaching it cannot change any estimate).
      std::unique_ptr<telemetry::FlightRecorder> recorder;
      if (!config_.blackbox_dir.empty()) {
        telemetry::FlightRecorderConfig rcfg;
        rcfg.dump_dir = config_.blackbox_dir;
        rcfg.label = cell.localizer + "-" + cell.scenario.label();
        recorder = std::make_unique<telemetry::FlightRecorder>(
            rcfg, &telemetry.events);

        PostmortemStackSpec spec;
        spec.track = config_.track_name;
        spec.localizer = cell.localizer;
        spec.n_particles = config_.n_particles;
        spec.threads = config_.cell_threads;
        spec.range = "cddt";  // make_localizer pins kCddt for grid builds
        spec.beams = SynPfConfig{}.beams;
        spec.pf_seed = SynPfConfig{}.seed;
        spec.fault = cell.scenario.fault;
        spec.severity = cell.scenario.severity;
        spec.fault_seed = config_.fault_seed;
        spec.governor = gov_mode;
        spec.budget_ms = gov_mode.empty() ? 0.0 : config_.budget_ms;
        json::Value provenance = json::Value::object();
        provenance.set("stack", stack_spec_to_json(spec));
        recorder->set_provenance(std::move(provenance));

        SynPf* synpf = dynamic_cast<SynPf*>(localizer.get());
        recovery::SupervisedLocalizer* sup = supervised.get();
        fault::FaultedLocalizer* flt = &faulted;
        const std::size_t top_k = rcfg.top_k;
        recorder->set_tick_probe([synpf, sup, flt,
                                  top_k](telemetry::TickSnapshot& snap) {
          if (synpf != nullptr) {
            ParticleFilter& pf = synpf->filter();
            // Health signals come from the filter's cached per-update
            // block (metrics are attached grid-wide) — the probe must not
            // add O(n) passes of its own.
            snap.ess_fraction = pf.health().ess_fraction;
            snap.weight_entropy = pf.health().weight_entropy;
            snap.injection_prob = pf.recovery_injection_prob();
            snap.digest.clear();
            for (const Particle& p : pf.top_particles(top_k)) {
              snap.digest.push_back(p.pose.x);
              snap.digest.push_back(p.pose.y);
              snap.digest.push_back(p.pose.theta);
              snap.digest.push_back(p.weight);
            }
          }
          if (sup != nullptr) {
            snap.health_state = static_cast<int>(sup->state());
            snap.latch_mask = sup->detector().latch_mask();
            snap.alignment = sup->last_alignment();
          }
          snap.fault_level = flt->last_fault_level();
        });
        sink.recorder = recorder.get();
      }

      ExperimentRunner runner{track, experiment};
      cell.result = runner.run(*subject, nullptr, sink);

      cell.events_total = telemetry.events.total();
      cell.events_warn = telemetry.events.count(telemetry::EventSeverity::kWarn);
      cell.events_error =
          telemetry.events.count(telemetry::EventSeverity::kError);
      cell.events_critical = telemetry.events.critical_count();
      cell.events_dropped = telemetry.events.dropped();
      if (recorder != nullptr) cell.blackboxes = recorder->dump_paths();

      cell.has_recovery = true;
      cell.recovery_success = cell.result.recovered;
      cell.kidnaps = cell.result.kidnaps_applied;
      cell.divergence_episodes = cell.result.divergence_episodes;
      cell.recoveries = cell.result.recoveries;
      cell.time_to_reloc_mean_s = cell.result.time_to_relocalize_mean_s;
      cell.time_to_reloc_max_s = cell.result.time_to_relocalize_max_s;
      cell.post_divergence_lateral_cm =
          cell.result.post_divergence_lateral_cm;

      const telemetry::MetricsRegistry& m = telemetry.metrics;
      cell.reinjections = counter_value(m, "recovery.injections");
      cell.global_relocs = counter_value(m, "recovery.global_relocs");
      cell.recovery_transitions = counter_value(m, "recovery.to_suspect") +
                                  counter_value(m, "recovery.to_diverged") +
                                  counter_value(m, "recovery.to_recovering") +
                                  counter_value(m, "recovery.to_healthy");
      cell.ess_fraction_p50 = hist_quantile(m, "pf.ess_fraction_dist", 0.50);
      const telemetry::Histogram* ess = m.find_histogram("pf.ess_fraction_dist");
      cell.ess_fraction_min = ess != nullptr ? ess->min() : 0.0;
      cell.resamples = counter_value(m, "pf.resamples");
      cell.pose_jump_alarms = counter_value(m, "pf.pose_jump_alarms");
      const char* stage = base_kind(cell.localizer) == "CartoLite"
                              ? "carto.local_match_ms"
                              : "pf.raycast_ms";
      cell.stage_p50_ms = hist_quantile(m, stage, 0.50);
      cell.stage_p99_ms = hist_quantile(m, stage, 0.99);

      if (governed != nullptr) {
        cell.governed = true;
        cell.governor_shed = governed->config().shed;
        cell.budget_ms = governed->config().budget_ms;
        cell.governor_updates = governed->updates();
        cell.deadline_misses = governed->deadline_misses();
        cell.shed_beam_updates = governed->shed_beam_updates();
        cell.shed_particle_updates = governed->shed_particle_updates();
        cell.skipped_resamples = governed->skipped_resamples();
        cell.governor_resizes = governed->resizes();
        cell.governor_mean_particles = governed->mean_particles();
        cell.governor_min_particles = governed->min_particles_seen();
        cell.governor_mean_beams = governed->mean_beams();
        cell.governor_cost_p50 = governed->cost_units_p50();
        cell.governor_cost_p99 = governed->cost_units_p99();
      }
    }
  });
  return cells;
}

ScenarioMatrixConfig ScenarioMatrix::smoke_config() {
  ScenarioMatrixConfig config;
  config.localizers = {"SynPF", "CartoLite", "SynPF+Recovery",
                       "SynPF+Governor", "SynPF+Budget"};
  config.scenarios = {
      {"none", 0.0},          {"odom_slip_ramp", 0.5}, {"odom_slip_ramp", 1.0},
      {"lidar_dropout", 0.5}, {"lidar_dropout", 1.0},  {"kidnap", 1.0},
      {"blackout", 1.0},      {"compute_pressure", 0.5},
      {"compute_pressure", 1.0},
  };
  config.experiment.laps = 1;
  config.experiment.max_sim_time = 60.0;
  config.n_particles = 800;
  return config;
}

ScenarioMatrixConfig ScenarioMatrix::full_config() {
  ScenarioMatrixConfig config;
  config.localizers = {"SynPF", "CartoLite", "SynPF+Recovery",
                       "SynPF+Governor", "SynPF+Budget"};
  config.scenarios.push_back({"none", 0.0});
  for (const char* fault :
       {"odom_slip_ramp", "odom_yaw_bias", "lidar_dropout", "lidar_noise",
        "scan_decimation", "blackout", "compute_pressure"}) {
    for (const double severity : {0.25, 0.5, 1.0}) {
      config.scenarios.push_back({fault, severity});
    }
  }
  config.scenarios.push_back({"kidnap", 0.5});
  config.scenarios.push_back({"kidnap", 1.0});
  config.experiment.laps = 2;
  return config;
}

bool compute_headline(const std::vector<ScenarioCell>& cells,
                      const std::string& fault, HeadlineComparison& out) {
  out = HeadlineComparison{};
  out.fault = fault;
  // Highest severity present for the fault.
  for (const ScenarioCell& cell : cells) {
    if (cell.scenario.fault == fault) {
      out.severity = std::max(out.severity, cell.scenario.severity);
    }
  }
  if (out.severity <= 0.0) return false;

  bool have_synpf = false;
  bool have_carto = false;
  for (const ScenarioCell& cell : cells) {
    const bool baseline = cell.scenario.fault == "none";
    const bool faulted = cell.scenario.fault == fault &&
                         cell.scenario.severity == out.severity;
    if (!baseline && !faulted) continue;
    if (cell.localizer == "SynPF") {
      (baseline ? out.synpf_baseline_cm : out.synpf_faulted_cm) =
          cell.result.lateral_mean_cm;
      if (faulted) out.synpf_crashed = cell.result.crashed;
      have_synpf = true;
    } else if (cell.localizer == "CartoLite") {
      (baseline ? out.carto_baseline_cm : out.carto_faulted_cm) =
          cell.result.lateral_mean_cm;
      if (faulted) out.carto_crashed = cell.result.crashed;
      have_carto = true;
    }
  }
  if (!have_synpf || !have_carto) return false;
  if (out.synpf_baseline_cm <= 0.0 || out.carto_baseline_cm <= 0.0) {
    return false;
  }
  out.synpf_degradation = out.synpf_crashed
                              ? HeadlineComparison::kCrashDegradation
                              : out.synpf_faulted_cm / out.synpf_baseline_cm;
  out.carto_degradation = out.carto_crashed
                              ? HeadlineComparison::kCrashDegradation
                              : out.carto_faulted_cm / out.carto_baseline_cm;
  return true;
}

bool compute_governor_headline(const std::vector<ScenarioCell>& cells,
                               GovernorHeadline& out) {
  out = GovernorHeadline{};
  for (const ScenarioCell& cell : cells) {
    if (cell.governed && cell.scenario.fault == "compute_pressure") {
      out.severity = std::max(out.severity, cell.scenario.severity);
    }
  }
  if (out.severity <= 0.0) return false;

  bool have_baseline = false;
  bool have_governed = false;
  bool have_enforcer = false;
  for (const ScenarioCell& cell : cells) {
    if (!cell.governed) continue;
    const bool baseline = cell.scenario.fault == "none";
    const bool pressured = cell.scenario.fault == "compute_pressure" &&
                           cell.scenario.severity == out.severity;
    if (!baseline && !pressured) continue;
    if (cell.governor_shed) {
      if (baseline) {
        out.governed_baseline_cm = cell.result.lateral_mean_cm;
        have_baseline = true;
      } else {
        out.budget_ms = cell.budget_ms;
        out.governed_pressured_cm = cell.result.lateral_mean_cm;
        out.governed_crashed = cell.result.crashed;
        out.governed_misses = cell.deadline_misses;
        out.governed_shed_updates =
            cell.shed_beam_updates + cell.shed_particle_updates;
        have_governed = true;
      }
    } else if (pressured) {
      out.enforcer_pressured_cm = cell.result.lateral_mean_cm;
      out.enforcer_crashed = cell.result.crashed;
      out.enforcer_misses = cell.deadline_misses;
      have_enforcer = true;
    }
  }
  if (!have_baseline || !have_governed || !have_enforcer) return false;
  if (out.governed_baseline_cm <= 0.0) return false;
  out.governed_degradation =
      out.governed_crashed ? HeadlineComparison::kCrashDegradation
                           : out.governed_pressured_cm / out.governed_baseline_cm;
  return true;
}

}  // namespace srl
