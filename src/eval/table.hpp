#pragma once

/// \file table.hpp
/// \brief Plain-text table rendering for the bench harnesses, so every
/// reproduced table prints in a shape comparable to the paper's.

#include <string>
#include <vector>

namespace srl {

/// Column-aligned text table. Rows are cells of preformatted strings.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Render with column padding and a header separator.
  std::string render() const;

  /// Format helper: fixed-point with `digits` decimals.
  static std::string num(double v, int digits = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace srl
