#include "eval/throughput_json.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace srl {

namespace {

std::string hash_to_hex(std::uint64_t h) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, h);
  return buf;
}

std::uint64_t hex_to_hash(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

double num(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  return v != nullptr ? v->as_double() : 0.0;
}

bool flag(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  return v != nullptr && v->as_bool();
}

std::string str(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  return v != nullptr ? v->as_string() : std::string{};
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t estimates_hash(std::span<const Pose2> estimates) {
  std::uint64_t h = kFnvOffset;
  for (const Pose2& p : estimates) {
    h = fnv1a_bytes(h, &p.x, sizeof(double));
    h = fnv1a_bytes(h, &p.y, sizeof(double));
    h = fnv1a_bytes(h, &p.theta, sizeof(double));
  }
  return h;
}

std::string ThroughputCell::key() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s simd=%s n=%d t=%d", stage.c_str(),
                simd.c_str(), particles, threads);
  return buf;
}

json::Value throughput_to_json(const ThroughputDocument& doc) {
  json::Value root = json::Value::object();
  root.set("schema", json::Value::string(kBenchThroughputSchema));

  json::Value provenance = json::Value::object();
  provenance.set("compiler", json::Value::string(doc.provenance.compiler));
  provenance.set("build", json::Value::string(doc.provenance.build));
  provenance.set("git_sha", json::Value::string(doc.provenance.git_sha));
  provenance.set("seed",
                 json::Value::number(static_cast<double>(doc.provenance.seed)));
  provenance.set("laps", json::Value::number(doc.provenance.laps));
  provenance.set("fast_mode", json::Value::boolean(doc.provenance.fast_mode));
  root.set("provenance", std::move(provenance));

  root.set("simd_active", json::Value::string(doc.simd_active));
  root.set("avx2_available", json::Value::boolean(doc.avx2_available));
  root.set("n_scans", json::Value::number(doc.n_scans));
  root.set("determinism_hash",
           json::Value::string(hash_to_hex(doc.determinism_hash)));

  json::Value cells = json::Value::array();
  for (const ThroughputCell& cell : doc.cells) {
    json::Value c = json::Value::object();
    c.set("stage", json::Value::string(cell.stage));
    c.set("simd", json::Value::string(cell.simd));
    c.set("particles", json::Value::number(cell.particles));
    c.set("threads", json::Value::number(cell.threads));
    c.set("beams", json::Value::number(cell.beams));
    c.set("mean_ms", json::Value::number(cell.mean_ms));
    c.set("items_per_sec", json::Value::number(cell.items_per_sec));
    c.set("hash", json::Value::string(hash_to_hex(cell.hash)));
    cells.push_back(std::move(c));
  }
  root.set("cells", std::move(cells));
  return root;
}

bool write_throughput_json(const std::string& path,
                           const ThroughputDocument& doc) {
  return throughput_to_json(doc).save(path);
}

std::optional<ThroughputDocument> throughput_from_json(
    const json::Value& root) {
  if (!root.is_object()) return std::nullopt;
  if (str(root, "schema") != kBenchThroughputSchema) return std::nullopt;

  ThroughputDocument doc;
  if (const json::Value* p = root.find("provenance");
      p != nullptr && p->is_object()) {
    doc.provenance.compiler = str(*p, "compiler");
    doc.provenance.build = str(*p, "build");
    doc.provenance.git_sha = str(*p, "git_sha");
    doc.provenance.seed = static_cast<std::uint64_t>(num(*p, "seed"));
    doc.provenance.laps = static_cast<int>(num(*p, "laps"));
    doc.provenance.fast_mode = flag(*p, "fast_mode");
  }
  doc.simd_active = str(root, "simd_active");
  doc.avx2_available = flag(root, "avx2_available");
  doc.n_scans = static_cast<int>(num(root, "n_scans"));
  doc.determinism_hash = hex_to_hash(str(root, "determinism_hash"));

  const json::Value* cells = root.find("cells");
  if (cells == nullptr || !cells->is_array()) return std::nullopt;
  for (std::size_t i = 0; i < cells->size(); ++i) {
    const json::Value& c = *cells->at(i);
    if (!c.is_object()) return std::nullopt;
    ThroughputCell cell;
    cell.stage = str(c, "stage");
    cell.simd = str(c, "simd");
    cell.particles = static_cast<int>(num(c, "particles"));
    cell.threads = static_cast<int>(num(c, "threads"));
    cell.beams = static_cast<int>(num(c, "beams"));
    cell.mean_ms = num(c, "mean_ms");
    cell.items_per_sec = num(c, "items_per_sec");
    cell.hash = hex_to_hash(str(c, "hash"));
    doc.cells.push_back(std::move(cell));
  }
  return doc;
}

std::optional<ThroughputDocument> read_throughput_json(
    const std::string& path) {
  std::optional<json::Value> root = json::Value::load(path);
  if (!root.has_value()) return std::nullopt;
  return throughput_from_json(*root);
}

}  // namespace srl
