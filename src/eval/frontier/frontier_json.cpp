#include "eval/frontier/frontier_json.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace srl::frontier {

namespace {

json::Value hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
  return json::Value::string(buf);
}

std::uint64_t parse_hex64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 0);
}

double num_field(const json::Value& v, const char* key, double fallback = 0.0) {
  const json::Value* f = v.find(key);
  return f != nullptr ? f->as_double(fallback) : fallback;
}

std::string str_field(const json::Value& v, const char* key) {
  const json::Value* f = v.find(key);
  return f != nullptr ? f->as_string() : std::string{};
}

bool bool_field(const json::Value& v, const char* key) {
  const json::Value* f = v.find(key);
  return f != nullptr && f->as_bool(false);
}

json::Value evaluation_to_json(const FrontierEvaluation& eval) {
  json::Value v = json::Value::object();
  v.set("index", json::Value::number(static_cast<double>(eval.index)));
  v.set("severity", json::Value::number(eval.severity));
  v.set("failed", json::Value::boolean(eval.failed));
  v.set("crashed", json::Value::boolean(eval.crashed));
  v.set("divergence_episodes",
        json::Value::number(static_cast<double>(eval.divergence_episodes)));
  v.set("recoveries",
        json::Value::number(static_cast<double>(eval.recoveries)));
  v.set("lateral_mean_cm", json::Value::number(eval.lateral_mean_cm));
  v.set("final_pose_error_m", json::Value::number(eval.final_pose_error_m));
  return v;
}

FrontierEvaluation evaluation_from_json(const json::Value& v) {
  FrontierEvaluation eval;
  eval.index = static_cast<std::uint32_t>(num_field(v, "index"));
  eval.severity = num_field(v, "severity");
  eval.failed = bool_field(v, "failed");
  eval.crashed = bool_field(v, "crashed");
  eval.divergence_episodes =
      static_cast<int>(num_field(v, "divergence_episodes"));
  eval.recoveries = static_cast<int>(num_field(v, "recoveries"));
  eval.lateral_mean_cm = num_field(v, "lateral_mean_cm");
  eval.final_pose_error_m = num_field(v, "final_pose_error_m");
  return eval;
}

json::Value point_to_json(const FrontierPoint& point) {
  json::Value v = json::Value::object();
  v.set("localizer", json::Value::string(point.localizer));
  v.set("axis", json::Value::string(point.axis));
  v.set("track_class", json::Value::string(point.track_class));
  v.set("variant", json::Value::number(static_cast<double>(point.variant)));
  v.set("censored", json::Value::boolean(point.censored));
  v.set("degenerate", json::Value::boolean(point.degenerate));
  v.set("breaking_severity", json::Value::number(point.breaking_severity));
  v.set("bracket_lo", json::Value::number(point.bracket_lo));
  v.set("bracket_hi", json::Value::number(point.bracket_hi));
  v.set("breaking_index",
        json::Value::number(static_cast<double>(point.breaking_index)));
  v.set("track_length_m", json::Value::number(point.track_length_m));
  v.set("track_max_abs_curvature",
        json::Value::number(point.track_max_abs_curvature));
  json::Value evals = json::Value::array();
  for (const FrontierEvaluation& eval : point.evaluations) {
    evals.push_back(evaluation_to_json(eval));
  }
  v.set("evaluations", std::move(evals));
  json::Value boxes = json::Value::array();
  for (const std::string& path : point.blackboxes) {
    boxes.push_back(json::Value::string(path));
  }
  v.set("blackboxes", std::move(boxes));
  return v;
}

FrontierPoint point_from_json(const json::Value& v) {
  FrontierPoint point;
  point.localizer = str_field(v, "localizer");
  point.axis = str_field(v, "axis");
  point.track_class = str_field(v, "track_class");
  point.variant = static_cast<int>(num_field(v, "variant"));
  point.censored = bool_field(v, "censored");
  point.degenerate = bool_field(v, "degenerate");
  point.breaking_severity = num_field(v, "breaking_severity");
  point.bracket_lo = num_field(v, "bracket_lo");
  point.bracket_hi = num_field(v, "bracket_hi");
  point.breaking_index =
      static_cast<std::uint32_t>(num_field(v, "breaking_index"));
  point.track_length_m = num_field(v, "track_length_m");
  point.track_max_abs_curvature = num_field(v, "track_max_abs_curvature");
  if (const json::Value* evals = v.find("evaluations");
      evals != nullptr && evals->is_array()) {
    for (std::size_t i = 0; i < evals->size(); ++i) {
      point.evaluations.push_back(evaluation_from_json(*evals->at(i)));
    }
  }
  if (const json::Value* boxes = v.find("blackboxes");
      boxes != nullptr && boxes->is_array()) {
    for (std::size_t i = 0; i < boxes->size(); ++i) {
      point.blackboxes.push_back(boxes->at(i)->as_string());
    }
  }
  return point;
}

double effective_breaking(const FrontierPoint& point) {
  return point.censored ? kCensoredBreaking : point.breaking_severity;
}

bool same_cell(const FrontierPoint& a, const FrontierPoint& b) {
  return a.localizer == b.localizer && a.axis == b.axis &&
         a.track_class == b.track_class && a.variant == b.variant;
}

}  // namespace

json::Value frontier_to_json(const FrontierDocument& doc) {
  json::Value root = json::Value::object();
  root.set("schema", json::Value::string(kFrontierSchema));

  json::Value prov = json::Value::object();
  prov.set("compiler", json::Value::string(doc.provenance.compiler));
  prov.set("build", json::Value::string(doc.provenance.build));
  prov.set("git_sha", json::Value::string(doc.provenance.git_sha));
  prov.set("fast_mode", json::Value::boolean(doc.provenance.fast_mode));
  prov.set("scenario_seed", hex64(doc.result.seed));
  prov.set("fault_seed", hex64(doc.result.fault_seed));
  prov.set("bisect_iterations",
           json::Value::number(
               static_cast<double>(doc.result.bisect_iterations)));
  prov.set("n_particles",
           json::Value::number(static_cast<double>(doc.result.n_particles)));
  prov.set("variant",
           json::Value::number(static_cast<double>(doc.result.variant)));
  root.set("provenance", std::move(prov));

  json::Value points = json::Value::array();
  for (const FrontierPoint& point : doc.result.points) {
    points.push_back(point_to_json(point));
  }
  root.set("points", std::move(points));

  if (doc.has_headline) {
    json::Value h = json::Value::object();
    h.set("axis", json::Value::string(doc.headline.axis));
    h.set("track_class", json::Value::string(doc.headline.track_class));
    h.set("synpf_breaking", json::Value::number(doc.headline.synpf_breaking));
    h.set("synpf_bracket_width",
          json::Value::number(doc.headline.synpf_bracket_width));
    h.set("synpf_censored", json::Value::boolean(doc.headline.synpf_censored));
    h.set("carto_breaking", json::Value::number(doc.headline.carto_breaking));
    h.set("carto_bracket_width",
          json::Value::number(doc.headline.carto_bracket_width));
    h.set("carto_censored", json::Value::boolean(doc.headline.carto_censored));
    h.set("synpf_exceeds", json::Value::boolean(doc.headline.synpf_exceeds()));
    root.set("headline", std::move(h));
  }
  return root;
}

bool write_frontier_json(const std::string& path,
                         const FrontierDocument& doc) {
  return frontier_to_json(doc).save(path);
}

std::optional<FrontierDocument> frontier_from_json(const json::Value& root) {
  if (!root.is_object()) return std::nullopt;
  if (str_field(root, "schema") != kFrontierSchema) return std::nullopt;

  FrontierDocument doc;
  if (const json::Value* prov = root.find("provenance"); prov != nullptr) {
    doc.provenance.compiler = str_field(*prov, "compiler");
    doc.provenance.build = str_field(*prov, "build");
    doc.provenance.git_sha = str_field(*prov, "git_sha");
    doc.provenance.fast_mode = bool_field(*prov, "fast_mode");
    doc.result.seed = parse_hex64(str_field(*prov, "scenario_seed"));
    doc.result.fault_seed = parse_hex64(str_field(*prov, "fault_seed"));
    doc.result.bisect_iterations =
        static_cast<int>(num_field(*prov, "bisect_iterations"));
    doc.result.n_particles = static_cast<int>(num_field(*prov, "n_particles"));
    doc.result.variant = static_cast<int>(num_field(*prov, "variant"));
  }
  const json::Value* points = root.find("points");
  if (points == nullptr || !points->is_array()) return std::nullopt;
  for (std::size_t i = 0; i < points->size(); ++i) {
    doc.result.points.push_back(point_from_json(*points->at(i)));
  }
  if (const json::Value* h = root.find("headline"); h != nullptr) {
    doc.has_headline = true;
    doc.headline.axis = str_field(*h, "axis");
    doc.headline.track_class = str_field(*h, "track_class");
    doc.headline.synpf_breaking = num_field(*h, "synpf_breaking");
    doc.headline.synpf_bracket_width = num_field(*h, "synpf_bracket_width");
    doc.headline.synpf_censored = bool_field(*h, "synpf_censored");
    doc.headline.carto_breaking = num_field(*h, "carto_breaking");
    doc.headline.carto_bracket_width = num_field(*h, "carto_bracket_width");
    doc.headline.carto_censored = bool_field(*h, "carto_censored");
  }
  return doc;
}

std::optional<FrontierDocument> read_frontier_json(const std::string& path) {
  const std::optional<json::Value> root = json::Value::load(path);
  if (!root.has_value()) return std::nullopt;
  return frontier_from_json(*root);
}

CompareReport compare_frontier(const FrontierDocument& baseline,
                               const FrontierDocument& candidate,
                               const FrontierCompareThresholds& thresholds) {
  CompareReport report;

  if (thresholds.require_identical &&
      candidate.result.points.size() != baseline.result.points.size()) {
    report.failures.push_back(CompareFailure{
        "points", "count",
        static_cast<double>(baseline.result.points.size()),
        static_cast<double>(candidate.result.points.size()),
        static_cast<double>(baseline.result.points.size())});
  }

  for (const FrontierPoint& base : baseline.result.points) {
    const FrontierPoint* cand = nullptr;
    for (const FrontierPoint& p : candidate.result.points) {
      if (same_cell(base, p)) {
        cand = &p;
        break;
      }
    }
    if (cand == nullptr) {
      report.failures.push_back(CompareFailure{base.cell(), "missing_point",
                                               effective_breaking(base), 0.0,
                                               effective_breaking(base)});
      continue;
    }
    ++report.cells_compared;

    const double base_breaking = effective_breaking(base);
    const double cand_breaking = effective_breaking(*cand);
    const double limit = base_breaking - thresholds.severity_tol;
    if (cand_breaking < limit) {
      report.failures.push_back(CompareFailure{base.cell(),
                                               "breaking_severity",
                                               base_breaking, cand_breaking,
                                               limit});
    }

    if (!thresholds.require_identical) continue;
    // Determinism leg: every probe — order, replay key, verdict — and the
    // resulting bracket must match bit for bit.
    const bool bracket_same =
        base.censored == cand->censored &&
        base.degenerate == cand->degenerate &&
        base.bracket_lo == cand->bracket_lo &&
        base.bracket_hi == cand->bracket_hi &&
        base.breaking_index == cand->breaking_index;
    bool probes_same = base.evaluations.size() == cand->evaluations.size();
    for (std::size_t i = 0; probes_same && i < base.evaluations.size(); ++i) {
      const FrontierEvaluation& a = base.evaluations[i];
      const FrontierEvaluation& b = cand->evaluations[i];
      probes_same = a.index == b.index && a.failed == b.failed &&
                    a.crashed == b.crashed &&
                    a.lateral_mean_cm == b.lateral_mean_cm &&
                    a.final_pose_error_m == b.final_pose_error_m;
    }
    if (!bracket_same || !probes_same) {
      report.failures.push_back(CompareFailure{base.cell(), "probe_sequence",
                                               base_breaking, cand_breaking,
                                               base_breaking});
    }
  }
  return report;
}

}  // namespace srl::frontier
