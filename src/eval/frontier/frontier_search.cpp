#include "eval/frontier/frontier_search.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/parallel.hpp"
#include "core/synpf.hpp"
#include "eval/postmortem.hpp"
#include "fault/faulted_localizer.hpp"
#include "fault/pipeline.hpp"
#include "governor/governor.hpp"
#include "recovery/supervised_localizer.hpp"
#include "slam/pure_localization.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"
#include "track/raceline.hpp"

namespace srl::frontier {

namespace {

constexpr const char* kRecoverySuffix = "+Recovery";

bool wants_recovery(const std::string& kind) {
  const std::string suffix{kRecoverySuffix};
  return kind.size() > suffix.size() &&
         kind.compare(kind.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string base_kind(const std::string& kind) {
  return wants_recovery(kind)
             ? kind.substr(0, kind.size() - std::string{kRecoverySuffix}.size())
             : kind;
}

std::unique_ptr<Localizer> make_localizer(
    const std::string& kind, const std::shared_ptr<const OccupancyGrid>& map,
    const LidarConfig& lidar, const FrontierSearchConfig& config) {
  if (kind == "SynPF") {
    SynPfConfig cfg;
    cfg.range = RangeMethodKind::kCddt;  // fast construction per probe
    cfg.filter.n_particles = config.n_particles;
    cfg.filter.n_threads = config.cell_threads;
    return std::make_unique<SynPf>(cfg, map, lidar);
  }
  if (kind == "CartoLite") {
    return std::make_unique<CartoLocalizer>(PureLocalizationOptions{}, map,
                                            lidar);
  }
  return nullptr;
}

/// One closed-loop probe: race `localizer_kind` through `scenario` on the
/// prebuilt track. When `blackboxes` is non-null (the defining-failure
/// re-run) the flight recorder rides along — a pure observer, so the
/// trajectory is bitwise the one the recorder-off probe saw.
FrontierEvaluation closed_loop_probe(
    const FrontierSearchConfig& config, const Track& track,
    const std::shared_ptr<const OccupancyGrid>& map,
    const std::string& localizer_kind, const SampledScenario& scenario,
    std::vector<std::string>* blackboxes) {
  FrontierEvaluation eval;
  eval.index = scenario.index;
  eval.severity = scenario.severity;

  ExperimentConfig experiment = config.experiment;
  fault::FaultPipeline pipeline{config.fault_seed, experiment.lidar};
  if (scenario.severity > 0.0) {
    pipeline.add(fault::make_injector(scenario.axis, scenario.profile));
  }

  std::unique_ptr<Localizer> localizer =
      make_localizer(base_kind(localizer_kind), map, experiment.lidar, config);
  if (localizer == nullptr) {
    eval.failed = true;  // unknown kind: permanently broken combination
    return eval;
  }
  fault::FaultedLocalizer faulted{*localizer, pipeline};

  std::unique_ptr<recovery::SupervisedLocalizer> supervised;
  Localizer* subject = &faulted;
  if (wants_recovery(localizer_kind)) {
    supervised = std::make_unique<recovery::SupervisedLocalizer>(
        faulted, recovery::SupervisedLocalizerConfig{}, map, experiment.lidar);
    if (auto* synpf = dynamic_cast<SynPf*>(localizer.get())) {
      supervised->bind_filter(&synpf->filter());
    }
    subject = supervised.get();
  }

  // The compute-pressure axis attacks a declared budget, not the sensor
  // stream: those probes race inside a budget-*enforcing* governor (no
  // shedding — the fixed workload either fits the squeezed budget or the
  // update drops), so severity maps onto dropped updates and, past the
  // frontier, divergence. Every other axis runs ungoverned.
  std::unique_ptr<governor::GovernedLocalizer> governed;
  if (scenario.axis == "compute_pressure") {
    governor::GovernorConfig gcfg;
    gcfg.budget_ms = config.budget_ms;
    gcfg.shed = false;
    gcfg.adaptive = false;
    gcfg.nominal_cost_units = governor::kCartoNominalCostUnits;
    governed = std::make_unique<governor::GovernedLocalizer>(*subject, gcfg);
    if (auto* synpf = dynamic_cast<SynPf*>(localizer.get())) {
      governed->bind_filter(&synpf->filter());
    }
    governed->bind_pressure(&pipeline);
    if (supervised != nullptr) governed->bind_supervisor(supervised.get());
    subject = governed.get();
  }

  telemetry::Telemetry telemetry;
  telemetry::Sink sink;
  std::unique_ptr<telemetry::FlightRecorder> recorder;
  if (blackboxes != nullptr && !config.blackbox_dir.empty()) {
    telemetry::FlightRecorderConfig rcfg;
    rcfg.dump_dir = config.blackbox_dir;
    rcfg.label = localizer_kind + "-" + scenario.label();
    recorder =
        std::make_unique<telemetry::FlightRecorder>(rcfg, &telemetry.events);

    // Rebuild recipe: the frontier replay key *is* the track and fault
    // recipe — `tools/postmortem --replay` resamples the scenario from
    // (seed, index) and reconstructs the identical stack.
    PostmortemStackSpec spec;
    spec.track = ScenarioSampler::replay_recipe(scenario.seed, scenario.index);
    spec.localizer = localizer_kind;
    spec.n_particles = config.n_particles;
    spec.threads = config.cell_threads;
    spec.range = "cddt";
    spec.beams = SynPfConfig{}.beams;
    spec.pf_seed = SynPfConfig{}.seed;
    spec.fault = scenario.axis;
    spec.severity = scenario.severity;
    spec.fault_seed = config.fault_seed;
    if (governed != nullptr) {
      spec.governor = "enforce";
      spec.budget_ms = config.budget_ms;
    }
    json::Value provenance = json::Value::object();
    provenance.set("stack", stack_spec_to_json(spec));
    provenance.set("scenario", json::Value::string(scenario.label()));
    recorder->set_provenance(std::move(provenance));

    SynPf* synpf = dynamic_cast<SynPf*>(localizer.get());
    recovery::SupervisedLocalizer* sup = supervised.get();
    fault::FaultedLocalizer* flt = &faulted;
    const std::size_t top_k = rcfg.top_k;
    recorder->set_tick_probe(
        [synpf, sup, flt, top_k](telemetry::TickSnapshot& snap) {
          if (synpf != nullptr) {
            ParticleFilter& pf = synpf->filter();
            snap.ess_fraction = pf.health().ess_fraction;
            snap.weight_entropy = pf.health().weight_entropy;
            snap.injection_prob = pf.recovery_injection_prob();
            snap.digest.clear();
            for (const Particle& p : pf.top_particles(top_k)) {
              snap.digest.push_back(p.pose.x);
              snap.digest.push_back(p.pose.y);
              snap.digest.push_back(p.pose.theta);
              snap.digest.push_back(p.weight);
            }
          }
          if (sup != nullptr) {
            snap.health_state = static_cast<int>(sup->state());
            snap.latch_mask = sup->detector().latch_mask();
            snap.alignment = sup->last_alignment();
          }
          snap.fault_level = flt->last_fault_level();
        });
    sink.recorder = recorder.get();
  }

  ExperimentRunner runner{track, experiment};
  const ExperimentResult result = runner.run(*subject, nullptr, sink);

  eval.crashed = result.crashed;
  eval.divergence_episodes = result.divergence_episodes;
  eval.recoveries = result.recoveries;
  eval.lateral_mean_cm = result.lateral_mean_cm;
  eval.final_pose_error_m = result.final_pose_error_m;
  eval.failed = result.crashed || !result.recovered;
  if (recorder != nullptr) *blackboxes = recorder->dump_paths();
  return eval;
}

struct Combo {
  std::string localizer;
  int axis{0};
  int track_class{0};
};

/// Shared bracket-then-bisect driver. `probe` scores one scenario and
/// `define_failure` (native path only) re-runs the frontier-defining
/// failure with the recorder attached.
FrontierResult run_search_impl(
    const FrontierSearchConfig& config,
    const std::function<FrontierEvaluation(const Combo&,
                                           const SampledScenario&)>& probe,
    const std::function<void(const Combo&, const SampledScenario&,
                             FrontierPoint&)>& define_failure) {
  FrontierResult result;
  result.seed = config.seed;
  result.fault_seed = config.fault_seed;
  result.bisect_iterations = config.bisect_iterations;
  result.n_particles = config.n_particles;
  result.variant = config.variant;

  std::vector<int> axes = config.axes;
  if (axes.empty()) {
    for (int a = 0; a < static_cast<int>(frontier_axes().size()); ++a) {
      axes.push_back(a);
    }
  }

  // Combo order is a pure function of the config: localizer-major, then
  // axis, then track class — the artifact's point order.
  std::vector<Combo> combos;
  for (const std::string& localizer : config.localizers) {
    for (const int axis : axes) {
      for (const int tc : config.track_classes) {
        combos.push_back(Combo{localizer, axis, tc});
      }
    }
  }
  result.points.resize(combos.size());

  const ScenarioSampler sampler{config.seed};
  ThreadPool pool{config.search_threads};
  pool.parallel_for(combos.size(), [&](int /*lane*/, std::size_t begin,
                                       std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const Combo& combo = combos[i];
      FrontierPoint& point = result.points[i];
      point.localizer = combo.localizer;
      point.axis = frontier_axes()[static_cast<std::size_t>(combo.axis)];
      point.track_class =
          frontier_track_classes()[static_cast<std::size_t>(combo.track_class)];
      point.variant = config.variant;

      const auto scenario_at = [&](int sev_step) {
        ScenarioKey key;
        key.sev_step = sev_step;
        key.axis = combo.axis;
        key.track_class = combo.track_class;
        key.variant = config.variant;
        return sampler.sample(key.pack());
      };
      const auto probe_at = [&](int sev_step) {
        const SampledScenario scenario = scenario_at(sev_step);
        point.evaluations.push_back(probe(combo, scenario));
        return point.evaluations.back().failed;
      };

      // Bracket: the full-severity probe decides censoring, the clean
      // probe decides degeneracy; only a [pass, fail] bracket is bisected.
      int lo = 0;
      int hi = kSeverityDenominator;
      if (!probe_at(hi)) {
        point.censored = true;
        point.bracket_lo = 1.0;
        point.bracket_hi = 1.0;
      } else if (probe_at(lo)) {
        point.degenerate = true;
        hi = lo;
      } else {
        for (int it = 0; it < config.bisect_iterations && hi - lo > 1; ++it) {
          const int mid = lo + (hi - lo) / 2;  // deterministic floor midpoint
          if (probe_at(mid)) {
            hi = mid;
          } else {
            lo = mid;
          }
        }
      }
      if (!point.censored) {
        point.bracket_lo =
            static_cast<double>(lo) / kSeverityDenominator;
        point.bracket_hi =
            static_cast<double>(hi) / kSeverityDenominator;
        point.breaking_severity = point.bracket_hi;
        const SampledScenario defining = scenario_at(hi);
        point.breaking_index = defining.index;
        if (define_failure) define_failure(combo, defining, point);
      }
    }
  });
  return result;
}

}  // namespace

std::string FrontierPoint::cell() const {
  return localizer + "/" + axis + "/" + track_class + "#" +
         std::to_string(variant);
}

FrontierSearchConfig FrontierSearchConfig::smoke() {
  FrontierSearchConfig config;
  config.localizers = {"SynPF", "CartoLite"};
  config.axes = {0, 3, 8};  // odom_slip_ramp, lidar_dropout, compute_pressure
  config.track_classes = {0};
  config.bisect_iterations = 3;  // bracket width 1/8 severity
  config.n_particles = 600;
  config.experiment.laps = 1;
  config.experiment.max_sim_time = 45.0;
  return config;
}

FrontierResult run_frontier_search(const FrontierSearchConfig& config) {
  // Prebuild one track (+ map + metadata) per requested class — the track
  // key excludes severity and axis bits, so every combo of a class races
  // the same circuit.
  const ScenarioSampler sampler{config.seed};
  struct ClassContext {
    Track track;
    std::shared_ptr<const OccupancyGrid> map;
    double length_m{0.0};
    double max_abs_curvature{0.0};
  };
  std::vector<int> class_slot(frontier_track_classes().size(), -1);
  std::vector<ClassContext> contexts;
  for (const int tc : config.track_classes) {
    if (class_slot[static_cast<std::size_t>(tc)] >= 0) continue;
    ScenarioKey key;
    key.track_class = tc;
    key.variant = config.variant;
    ClassContext ctx;
    ctx.track = sampler.build_track(sampler.sample(key.pack()));
    ctx.map = std::make_shared<const OccupancyGrid>(ctx.track.grid);
    const Raceline raceline{ctx.track.centerline};
    ctx.length_m = raceline.length();
    ctx.max_abs_curvature = raceline.max_abs_curvature();
    class_slot[static_cast<std::size_t>(tc)] =
        static_cast<int>(contexts.size());
    contexts.push_back(std::move(ctx));
  }

  const auto context_of = [&](const Combo& combo) -> const ClassContext& {
    return contexts[static_cast<std::size_t>(
        class_slot[static_cast<std::size_t>(combo.track_class)])];
  };
  FrontierResult result = run_search_impl(
      config,
      [&](const Combo& combo, const SampledScenario& scenario) {
        const ClassContext& ctx = context_of(combo);
        return closed_loop_probe(config, ctx.track, ctx.map, combo.localizer,
                                 scenario, nullptr);
      },
      [&](const Combo& combo, const SampledScenario& defining,
          FrontierPoint& point) {
        if (config.blackbox_dir.empty()) return;
        const ClassContext& ctx = context_of(combo);
        closed_loop_probe(config, ctx.track, ctx.map, combo.localizer,
                          defining, &point.blackboxes);
        // Store paths relative to the dump root: the artifact must be
        // byte-identical no matter where the black boxes land on disk.
        const std::string prefix = config.blackbox_dir + "/";
        for (std::string& path : point.blackboxes) {
          if (path.rfind(prefix, 0) == 0) path.erase(0, prefix.size());
        }
      });

  for (FrontierPoint& point : result.points) {
    const std::size_t tc = static_cast<std::size_t>(std::distance(
        frontier_track_classes().begin(),
        std::find(frontier_track_classes().begin(),
                  frontier_track_classes().end(), point.track_class)));
    const ClassContext& ctx =
        contexts[static_cast<std::size_t>(class_slot[tc])];
    point.track_length_m = ctx.length_m;
    point.track_max_abs_curvature = ctx.max_abs_curvature;
  }
  return result;
}

FrontierResult run_frontier_search(const FrontierSearchConfig& config,
                                   const ScenarioEvaluator& evaluate) {
  return run_search_impl(
      config,
      [&](const Combo& combo, const SampledScenario& scenario) {
        FrontierEvaluation eval = evaluate(combo.localizer, scenario);
        eval.index = scenario.index;
        eval.severity = scenario.severity;
        return eval;
      },
      {});
}

bool compute_frontier_headline(const FrontierResult& result,
                               const std::string& axis,
                               const std::string& track_class,
                               FrontierHeadline& out) {
  out = FrontierHeadline{};
  out.axis = axis;
  out.track_class = track_class;
  bool have_synpf = false;
  bool have_carto = false;
  for (const FrontierPoint& point : result.points) {
    if (point.axis != axis || point.track_class != track_class) continue;
    const double width =
        point.censored ? 0.0 : point.bracket_hi - point.bracket_lo;
    if (point.localizer == "SynPF") {
      out.synpf_breaking = point.breaking_severity;
      out.synpf_bracket_width = width;
      out.synpf_censored = point.censored;
      have_synpf = true;
    } else if (point.localizer == "CartoLite") {
      out.carto_breaking = point.breaking_severity;
      out.carto_bracket_width = width;
      out.carto_censored = point.censored;
      have_carto = true;
    }
  }
  return have_synpf && have_carto;
}

}  // namespace srl::frontier
