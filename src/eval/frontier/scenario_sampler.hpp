#pragma once

/// \file scenario_sampler.hpp
/// \brief Deterministic scenario fuzzing: every fault scenario the frontier
/// search probes is a pure function of `(seed, index)` (DESIGN.md §14).
///
/// A scenario composes one of the nine fault injectors — the eight PR-4
/// sensor corrupters plus the PR-10 compute-pressure axis — (sampled
/// severity, phase, ramp and window) with a procedurally varied circuit
/// (corridor width, length scale, waypoint jitter — the `track/` generator
/// parameters). The 32-bit scenario *index* is bit-packed so the search can
/// steer each coordinate independently:
///
///     [ 0..10] severity step s in 0..1024  (severity = s / 1024, dyadic —
///              every probed severity is exact in binary floating point)
///     [11..14] fault axis id               (frontier_axes() order, pinned)
///     [15..16] track class id              (frontier_track_classes())
///     [17..30] variant ordinal             (independent shape redraws)
///
/// All stochastic shape draws come from `Rng::substream` with the pinned
/// stream keys below, keyed by the index *with the severity bits cleared*
/// (and, for track geometry, the axis bits too). Consequences, both
/// load-bearing for the bisector:
///
///  1. **Replayability.** Any scenario — including every frontier-defining
///     failure in a `srl.frontier/1` artifact — rebuilds bit-for-bit from
///     `(seed, index)` alone; no draw history, thread count or wall clock
///     enters the derivation.
///  2. **Severity-coherence.** Changing only the severity bits changes only
///     the fault intensity: the envelope phase/ramp and the circuit are
///     bitwise identical across the whole severity sweep of one
///     {axis × track-class × variant} combination, so bisection moves along
///     a single well-defined degradation axis.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "gridmap/track_generator.hpp"

namespace srl::frontier {

/// Substream key schedule of the scenario sampler (see Rng::substream).
/// Tags are pinned — append new kinds, never renumber (committed frontier
/// artifacts and black boxes replay through these keys).
inline constexpr std::uint64_t kFrontierStreamTrack = 1;    ///< circuit shape
inline constexpr std::uint64_t kFrontierStreamProfile = 2;  ///< fault envelope

/// Severity grid: step / kSeverityDenominator with step in [0, 1024]. The
/// denominator is a power of two so every probed severity (and every
/// bisection midpoint) is exactly representable — artifact bytes cannot
/// drift through decimal formatting.
inline constexpr int kSeverityDenominator = 1024;

/// Bit layout of the scenario index (documented above).
inline constexpr std::uint32_t kSeverityBits = 11;
inline constexpr std::uint32_t kAxisBits = 4;
inline constexpr std::uint32_t kTrackClassBits = 2;
inline constexpr std::uint32_t kAxisShift = kSeverityBits;
inline constexpr std::uint32_t kTrackClassShift = kSeverityBits + kAxisBits;
inline constexpr std::uint32_t kVariantShift =
    kTrackClassShift + kTrackClassBits;

/// The fault axes the frontier walks: the eight PR-4 injectors plus the
/// PR-10 `compute_pressure` axis (id 8, one of the spare 4-bit axis
/// values), in pinned order (axis ids index this vector and are baked
/// into replay keys — append-only, never reorder).
const std::vector<std::string>& frontier_axes();

/// Track classes: "club" (the Table-I rounded-rectangle circuit, jittered
/// length and corridor), "narrow" (same circuit, tightened corridor), and
/// "random" (waypoint-jittered random circuit). Ids index this vector.
const std::vector<std::string>& frontier_track_classes();

/// Unpacked scenario coordinates.
struct ScenarioKey {
  int sev_step{0};     ///< 0..kSeverityDenominator
  int axis{0};         ///< frontier_axes() id
  int track_class{0};  ///< frontier_track_classes() id
  int variant{0};      ///< shape redraw ordinal

  std::uint32_t pack() const;
  static ScenarioKey unpack(std::uint32_t index);
  /// Index with the severity bits cleared — the fault-envelope draw key.
  std::uint32_t profile_key() const;
  /// Index with severity *and* axis bits cleared — the circuit draw key
  /// (every axis of a {class, variant} cell races the same track).
  std::uint32_t track_key() const;
};

/// One fully resolved scenario. Everything below is a pure function of
/// `(seed, index)`; `profile` already folds the severity in.
struct SampledScenario {
  std::uint64_t seed{0};
  std::uint32_t index{0};
  ScenarioKey key{};
  std::string axis;            ///< injector factory name
  std::string track_class;     ///< frontier_track_classes() name
  double severity{0.0};        ///< key.sev_step / kSeverityDenominator
  fault::FaultProfile profile{};  ///< sampled envelope at this severity
  // -- resolved circuit parameters --
  TrackSpec spec{};            ///< corridor width sampled into half_width
  double length_scale{1.0};    ///< club/narrow: scales the circuit box
  int n_waypoints{0};          ///< random class only (0 = parametric box)
  double waypoint_radius{0.0};
  double waypoint_jitter{0.0};

  std::string label() const;  ///< "odom_slip_ramp/club#0@0.5"
};

/// The sampler: stateless, copyable, safe to share across threads — both
/// entry points are pure functions of (seed, index).
class ScenarioSampler {
 public:
  explicit ScenarioSampler(std::uint64_t seed) : seed_{seed} {}

  std::uint64_t seed() const { return seed_; }

  /// Resolve the scenario at `index`. Severity bits beyond
  /// kSeverityDenominator and ids beyond the pinned vocabularies are
  /// clamped into range (the packed layout cannot express an invalid
  /// scenario, so every index replays *something* deterministic).
  SampledScenario sample(std::uint32_t index) const;

  /// Rasterize the scenario's circuit — same bytes as every other call
  /// with the same (seed, track_key).
  Track build_track(const SampledScenario& scenario) const;

  /// "frontier:<seed hex>:<index>" — the track/stack recipe stamped into
  /// black boxes so `tools/postmortem --replay` can rebuild the sampled
  /// circuit (eval/postmortem.hpp understands it).
  static std::string replay_recipe(std::uint64_t seed, std::uint32_t index);
  /// Parse a recipe back; false when `recipe` is not frontier-shaped.
  static bool parse_replay_recipe(const std::string& recipe,
                                  std::uint64_t& seed, std::uint32_t& index);

 private:
  std::uint64_t seed_;
};

}  // namespace srl::frontier
