#pragma once

/// \file frontier_json.hpp
/// \brief The `srl.frontier/1` artifact — machine-readable robustness
/// frontiers — and the CI regression gate over two of them.
///
/// One frontier search serializes to one JSON document:
///
///     {
///       "schema": "srl.frontier/1",
///       "provenance": { compiler, build, seeds, budget, ... },
///       "points": [ {localizer, axis, track_class, breaking severity ±
///                    bracket, replay keys, probe log, black boxes} ],
///       "headline": { SynPF vs CartoLite breaking severity on one axis }
///     }
///
/// Deliberately absent: wall-clock time and thread counts. The document is
/// a pure function of the search config, so CI can demand *byte-identical*
/// artifacts between same-machine reruns (the determinism gate) before
/// applying tolerant cross-machine thresholds. Like the bench schema,
/// fields may be added but never renamed or repurposed without bumping the
/// version suffix.
///
/// `compare_frontier` is the gate `tools/bench_compare --frontier` wraps:
/// every baseline point must exist in the candidate, and its breaking
/// severity may not drop by more than the tolerance (a censored point —
/// no failure up to severity 1.0 — counts as breaking beyond the range, so
/// a candidate that starts failing inside the range regresses loudly).

#include <optional>
#include <string>

#include "common/json.hpp"
#include "eval/bench_compare.hpp"
#include "eval/frontier/frontier_search.hpp"

namespace srl::frontier {

inline constexpr const char* kFrontierSchema = "srl.frontier/1";

/// Build provenance (informational; never compared by the gate).
struct FrontierProvenance {
  std::string compiler;  ///< compiler_id()
  std::string build;     ///< "release" / "checked" / ...
  std::string git_sha;   ///< from SRL_GIT_SHA env when set
  bool fast_mode{false};
};

struct FrontierDocument {
  FrontierProvenance provenance{};
  FrontierResult result{};
  bool has_headline{false};
  FrontierHeadline headline{};
};

json::Value frontier_to_json(const FrontierDocument& doc);
bool write_frontier_json(const std::string& path, const FrontierDocument& doc);

/// Parse; nullopt on I/O error, malformed JSON, or an unknown schema.
std::optional<FrontierDocument> frontier_from_json(const json::Value& root);
std::optional<FrontierDocument> read_frontier_json(const std::string& path);

struct FrontierCompareThresholds {
  /// Candidate breaking severity may drop at most this far below the
  /// baseline's (absolute, in severity units). 0 = no drop tolerated.
  double severity_tol = 0.0;
  /// Demand bitwise-identical documents: same points, same probe
  /// sequences, same replay keys (the same-machine determinism gate).
  bool require_identical = false;
};

/// Sentinel "effective breaking severity" of a censored point: beyond any
/// in-range severity, finite so limits serialize in failure reports.
inline constexpr double kCensoredBreaking = 2.0;

/// Diff candidate against baseline (report types shared with the bench
/// gate, eval/bench_compare.hpp).
CompareReport compare_frontier(const FrontierDocument& baseline,
                               const FrontierDocument& candidate,
                               const FrontierCompareThresholds& thresholds);

}  // namespace srl::frontier
