#pragma once

/// \file frontier_search.hpp
/// \brief Severity-bisected robustness frontiers: for each {localizer ×
/// fault-axis × track-class} combination, find the lowest severity at which
/// the localizer suffers an unrecovered divergence (DESIGN.md §14).
///
/// The search brackets then bisects on the dyadic severity grid of the
/// scenario sampler (eval/frontier/scenario_sampler.hpp):
///
///  1. probe severity 1.0 — if the run survives, the combination is
///     *censored* (no failure up to full severity; the frontier lies beyond
///     the modeled range);
///  2. probe severity 0.0 — if the clean run already fails, the combination
///     is *degenerate* (the circuit itself defeats the localizer);
///  3. otherwise bisect: integer midpoints on the severity-step grid for a
///     fixed iteration budget, so the probe sequence — and therefore every
///     byte of the result — is a pure function of the config.
///
/// A probe *fails* when the PR-5 divergence-episode machinery scores the
/// run as not recovered (`crashed`, or an episode opened and never closed —
/// eval/experiment.hpp). The final bracket is [highest passing severity,
/// lowest failing severity]; its width after B bisections is 2^-B of the
/// initial bracket. Combinations fan out over the PR-3 thread pool with
/// per-index result writes, so the artifact is bitwise identical at any
/// thread count.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "eval/experiment.hpp"
#include "eval/frontier/scenario_sampler.hpp"

namespace srl::frontier {

struct FrontierSearchConfig {
  /// Scenario-sampler master seed (keys every shape draw and replay key).
  std::uint64_t seed = 0xF407;
  /// FaultPipeline seed of every probe (decoupled, like the bench matrix).
  std::uint64_t fault_seed = 0x7a017ULL;
  /// Localizer kinds under test (scenario_matrix vocabulary: "SynPF",
  /// "CartoLite", optional "+Recovery" suffix).
  std::vector<std::string> localizers{"SynPF", "CartoLite"};
  /// Fault-axis ids (frontier_axes() order). Empty = all nine.
  std::vector<int> axes{};
  /// Declared per-update budget for `compute_pressure` probes: those
  /// scenarios race inside a budget-enforcing governor (PR-10), so the
  /// axis bites — pressure squeezes this budget until updates drop and
  /// the stack diverges. Other axes never construct a governor.
  double budget_ms = 2.0;
  /// Track-class ids (frontier_track_classes() order).
  std::vector<int> track_classes{0};
  /// Shape-redraw ordinal baked into every scenario index.
  int variant = 0;
  /// Bisection budget after the two bracket probes. The reported bracket
  /// width is kSeverityDenominator / 2^iterations severity steps.
  int bisect_iterations = 5;
  int n_particles = 800;
  /// Worker lanes inside each filter (keep 1: combos already parallelize).
  int cell_threads = 1;
  /// Worker lanes across combinations (0 = hardware/SRL_THREADS default).
  int search_threads = 0;
  /// Closed-loop template for every probe; `seed` here is the sim seed.
  ExperimentConfig experiment{};
  /// When non-empty, every frontier-defining failure is re-run with the
  /// PR-6 flight recorder attached and its black boxes land here, stamped
  /// with the scenario's `(seed, index)` replay recipe.
  std::string blackbox_dir{};

  /// Tiny-budget search for the CI smoke job: SynPF vs CartoLite on the
  /// club class, slip + dropout axes, 3 bisections, short runs.
  static FrontierSearchConfig smoke();
};

/// One probed scenario, in probe order.
struct FrontierEvaluation {
  std::uint32_t index{0};  ///< scenario replay key
  double severity{0.0};
  bool failed{false};      ///< crashed, or a divergence episode never closed
  bool crashed{false};
  int divergence_episodes{0};
  int recoveries{0};
  double lateral_mean_cm{0.0};
  double final_pose_error_m{0.0};
};

/// The frontier of one {localizer × axis × track-class} combination.
struct FrontierPoint {
  std::string localizer;
  std::string axis;
  std::string track_class;
  int variant{0};
  /// Survived severity 1.0 — no frontier inside the modeled range.
  bool censored{false};
  /// Failed severity 0.0 — the clean scenario already defeats the stack.
  bool degenerate{false};
  /// Lowest severity observed to fail (== bracket_hi; 0 when censored).
  double breaking_severity{0.0};
  double bracket_lo{0.0};  ///< highest severity observed to pass
  double bracket_hi{0.0};  ///< lowest severity observed to fail
  /// Replay key of the frontier-defining failure (0 when censored).
  std::uint32_t breaking_index{0};
  // -- circuit metadata (Raceline over the sampled centerline) --
  double track_length_m{0.0};
  double track_max_abs_curvature{0.0};
  std::vector<FrontierEvaluation> evaluations;  ///< every probe, in order
  /// Black boxes dumped by the defining-failure re-run (native path only).
  std::vector<std::string> blackboxes;

  std::string cell() const;  ///< "SynPF/odom_slip_ramp/club#0"
};

struct FrontierResult {
  std::uint64_t seed{0};
  std::uint64_t fault_seed{0};
  int bisect_iterations{0};
  int n_particles{0};
  int variant{0};
  /// Points in combo order: localizer-major, then axis, then track class —
  /// a pure function of the config, independent of search_threads.
  std::vector<FrontierPoint> points;
};

/// Custom probe hook for tests: score `scenario` against `localizer` and
/// return the evaluation (the search fills `index`/`severity` itself). The
/// hook must be a pure function of its arguments — it runs concurrently
/// across combinations.
using ScenarioEvaluator = std::function<FrontierEvaluation(
    const std::string& localizer, const SampledScenario& scenario)>;

/// Full closed-loop search: every probe races the localizer through the
/// sampled scenario (ExperimentRunner + FaultPipeline) and frontier
/// failures are re-run under the flight recorder when `blackbox_dir` is
/// set. Bitwise deterministic at any `search_threads`.
FrontierResult run_frontier_search(const FrontierSearchConfig& config);

/// Same bracketing/bisection driver with an injected probe — the unit-test
/// entry point (synthetic oracles make the bisector's arithmetic checkable
/// without simulation). No black-box re-runs.
FrontierResult run_frontier_search(const FrontierSearchConfig& config,
                                   const ScenarioEvaluator& evaluate);

/// The paper's headline restated as a frontier comparison on one axis and
/// track class: SynPF's breaking severity vs CartoLite's, each with the
/// final bracket width. Censoring counts as "beyond 1.0".
struct FrontierHeadline {
  std::string axis;
  std::string track_class;
  double synpf_breaking{0.0};
  double synpf_bracket_width{0.0};
  bool synpf_censored{false};
  double carto_breaking{0.0};
  double carto_bracket_width{0.0};
  bool carto_censored{false};
  /// SynPF's frontier strictly exceeds CartoLite's: CartoLite breaks inside
  /// the range and SynPF either survives outright or breaks strictly later.
  bool synpf_exceeds() const {
    if (carto_censored) return false;
    return synpf_censored || synpf_breaking > carto_breaking;
  }
};

/// Extract the headline from a finished search (axis/track-class by name);
/// false when either localizer's point is missing.
bool compute_frontier_headline(const FrontierResult& result,
                               const std::string& axis,
                               const std::string& track_class,
                               FrontierHeadline& out);

}  // namespace srl::frontier
