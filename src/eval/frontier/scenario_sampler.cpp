#include "eval/frontier/scenario_sampler.hpp"

#include <algorithm>
#include <cstdio>

#include "common/json.hpp"

namespace srl::frontier {

namespace {

constexpr std::uint32_t mask(std::uint32_t bits) {
  return (1u << bits) - 1u;
}

/// Pinned circuit-parameter draw schedule: four uniforms, in this order,
/// from the track substream. `build_track` replays the same draws before
/// handing the (advanced) generator to the waypoint sampler, so the sampled
/// parameters and the waypoint jitter always come from one coherent stream.
void draw_track_params(Rng& rng, SampledScenario& scenario) {
  const double a = rng.uniform();
  const double b = rng.uniform();
  const double c = rng.uniform();
  const double d = rng.uniform();
  scenario.spec = TrackSpec{};
  scenario.length_scale = 0.9 + 0.25 * a;
  scenario.n_waypoints = 0;
  if (scenario.track_class == "narrow") {
    // Tightened corridor: same club geometry, less room for error.
    scenario.spec.half_width = 0.78 + 0.18 * b;
  } else if (scenario.track_class == "random") {
    scenario.waypoint_radius = 5.5 + 1.5 * a;
    scenario.waypoint_jitter = 0.6 + 0.8 * b;
    scenario.n_waypoints = 8 + static_cast<int>(c * 4.999);
    scenario.spec.half_width = 0.95 + 0.2 * d;
  } else {  // "club"
    scenario.spec.half_width = 1.0 + 0.2 * b;
  }
}

}  // namespace

const std::vector<std::string>& frontier_axes() {
  static const std::vector<std::string> kAxes{
      "odom_slip_ramp", "odom_scale",      "odom_yaw_bias",
      "lidar_dropout",  "lidar_noise",     "scan_decimation",
      "latency_jitter", "blackout",        "compute_pressure",
  };
  return kAxes;
}

const std::vector<std::string>& frontier_track_classes() {
  static const std::vector<std::string> kClasses{"club", "narrow", "random"};
  return kClasses;
}

std::uint32_t ScenarioKey::pack() const {
  return (static_cast<std::uint32_t>(sev_step) & mask(kSeverityBits)) |
         ((static_cast<std::uint32_t>(axis) & mask(kAxisBits)) << kAxisShift) |
         ((static_cast<std::uint32_t>(track_class) & mask(kTrackClassBits))
          << kTrackClassShift) |
         (static_cast<std::uint32_t>(variant) << kVariantShift);
}

ScenarioKey ScenarioKey::unpack(std::uint32_t index) {
  ScenarioKey key;
  key.sev_step = static_cast<int>(index & mask(kSeverityBits));
  key.axis = static_cast<int>((index >> kAxisShift) & mask(kAxisBits));
  key.track_class =
      static_cast<int>((index >> kTrackClassShift) & mask(kTrackClassBits));
  key.variant = static_cast<int>(index >> kVariantShift);
  return key;
}

std::uint32_t ScenarioKey::profile_key() const {
  return pack() & ~mask(kSeverityBits);
}

std::uint32_t ScenarioKey::track_key() const {
  return pack() & ~((mask(kAxisBits) << kAxisShift) | mask(kSeverityBits));
}

std::string SampledScenario::label() const {
  return axis + "/" + track_class + "#" + std::to_string(key.variant) + "@" +
         json::format_number(severity);
}

SampledScenario ScenarioSampler::sample(std::uint32_t index) const {
  SampledScenario scenario;
  scenario.seed = seed_;
  scenario.index = index;
  scenario.key = ScenarioKey::unpack(index);
  scenario.key.sev_step = std::min(scenario.key.sev_step, kSeverityDenominator);
  const auto& axes = frontier_axes();
  const auto& classes = frontier_track_classes();
  scenario.key.axis =
      std::min<int>(scenario.key.axis, static_cast<int>(axes.size()) - 1);
  scenario.key.track_class = std::min<int>(
      scenario.key.track_class, static_cast<int>(classes.size()) - 1);
  scenario.axis = axes[static_cast<std::size_t>(scenario.key.axis)];
  scenario.track_class =
      classes[static_cast<std::size_t>(scenario.key.track_class)];
  scenario.severity = static_cast<double>(scenario.key.sev_step) /
                      static_cast<double>(kSeverityDenominator);

  // Fault envelope: drawn from the severity-independent profile key, so a
  // severity sweep moves along one fixed phase/ramp/window shape.
  Rng profile_rng =
      Rng{seed_}.substream(kFrontierStreamProfile, scenario.key.profile_key());
  const double t0 = profile_rng.uniform(0.0, 3.0);
  const double ramp = profile_rng.uniform(0.0, 8.0);
  const double window = profile_rng.uniform(2.0, 6.0);
  if (scenario.axis == "blackout") {
    // A blackout kills every return while active, so its *envelope level*
    // carries no intensity — severity dials the outage length instead
    // (exactly the canonical factory's convention).
    scenario.profile = fault::FaultProfile{
        scenario.severity > 0.0 ? 1.0 : 0.0, 2.0 + t0, 0.0,
        window * scenario.severity};
  } else {
    scenario.profile =
        fault::FaultProfile{scenario.severity, t0, ramp, -1.0};
  }

  Rng track_rng =
      Rng{seed_}.substream(kFrontierStreamTrack, scenario.key.track_key());
  draw_track_params(track_rng, scenario);
  return scenario;
}

Track ScenarioSampler::build_track(const SampledScenario& scenario) const {
  // Replay the circuit draws from the scenario's own key — never trust the
  // resolved fields alone, so a hand-edited scenario cannot desynchronize
  // the parameter draws from the waypoint stream.
  SampledScenario resolved = scenario;
  Rng rng = Rng{seed_}.substream(kFrontierStreamTrack, scenario.key.track_key());
  draw_track_params(rng, resolved);
  if (resolved.track_class == "random") {
    return TrackGenerator::random_circuit(rng, resolved.n_waypoints,
                                          resolved.waypoint_radius,
                                          resolved.waypoint_jitter,
                                          resolved.spec);
  }
  // The Table-I club circuit (16 x 9 m, 2.6 m corners), length-scaled.
  return TrackGenerator::rounded_rect(16.0 * resolved.length_scale,
                                      9.0 * resolved.length_scale, 2.6,
                                      resolved.spec);
}

std::string ScenarioSampler::replay_recipe(std::uint64_t seed,
                                           std::uint32_t index) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "frontier:%016llx:%lu",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long>(index));
  return buf;
}

bool ScenarioSampler::parse_replay_recipe(const std::string& recipe,
                                          std::uint64_t& seed,
                                          std::uint32_t& index) {
  unsigned long long s = 0;
  unsigned long i = 0;
  if (std::sscanf(recipe.c_str(), "frontier:%llx:%lu", &s, &i) != 2) {
    return false;
  }
  seed = s;
  index = static_cast<std::uint32_t>(i);
  return true;
}

}  // namespace srl::frontier
