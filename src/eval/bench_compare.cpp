#include "eval/bench_compare.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/json.hpp"

namespace srl {

std::string CompareFailure::describe() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s: %s regressed (baseline %.6g, candidate %.6g, limit %.6g)",
                cell.c_str(), metric.c_str(), baseline, candidate, limit);
  return buf;
}

namespace {

std::string cell_key(const ScenarioCell& cell) {
  return cell.localizer + "/" + cell.scenario.label();
}

const ScenarioCell* find_cell(const BenchDocument& doc,
                              const ScenarioCell& like) {
  for (const ScenarioCell& cell : doc.cells) {
    if (cell.localizer == like.localizer &&
        cell.scenario.fault == like.scenario.fault &&
        cell.scenario.severity == like.scenario.severity) {
      return &cell;
    }
  }
  return nullptr;
}

const FaultTraceFingerprint* find_fingerprint(
    const BenchDocument& doc, const FaultTraceFingerprint& like) {
  for (const FaultTraceFingerprint& fp : doc.fault_traces) {
    if (fp.fault == like.fault && fp.severity == like.severity) return &fp;
  }
  return nullptr;
}

void check_upper(const std::string& cell, const char* metric, double base,
                 double cand, double tol_frac, double slack,
                 CompareReport& report) {
  const double limit = base * (1.0 + tol_frac) + slack;
  if (cand > limit) {
    report.failures.push_back({cell, metric, base, cand, limit});
  }
}

}  // namespace

CompareReport compare_bench(const BenchDocument& baseline,
                            const BenchDocument& candidate,
                            const CompareThresholds& thresholds) {
  CompareReport report;

  for (const ScenarioCell& base : baseline.cells) {
    const std::string key = cell_key(base);
    const ScenarioCell* cand = find_cell(candidate, base);
    if (cand == nullptr) {
      report.failures.push_back({key, "missing_cell", 1.0, 0.0, 1.0});
      continue;
    }
    ++report.cells_compared;

    // Lost recovery fires even when the candidate crashed (a crash *is* the
    // failure mode being gated), so it is judged before the crash bail-outs.
    // Both sides must carry the recovery block — a schema-v1 baseline has
    // no recovery opinion to regress from.
    const bool judge_recovery = thresholds.gate_recovery &&
                                base.has_recovery && cand->has_recovery;
    if (judge_recovery && base.recovery_success && !cand->recovery_success) {
      report.failures.push_back({key, "recovery_success", 1.0, 0.0, 1.0});
      continue;
    }

    if (!thresholds.allow_new_crashes && cand->result.crashed &&
        !base.result.crashed) {
      report.failures.push_back({key, "crashed", 0.0, 1.0, 0.0});
      continue;  // a crashed run's accuracy numbers are meaningless
    }
    // Accuracy and latency gates only bind where both runs raced the full
    // scenario; a baseline crash leaves nothing meaningful to regress from.
    if (base.result.crashed || cand->result.crashed) continue;

    check_upper(key, "lateral_mean_cm", base.result.lateral_mean_cm,
                cand->result.lateral_mean_cm, thresholds.lateral_tol_frac,
                thresholds.lateral_slack_cm, report);
    check_upper(key, "update_p99_ms", base.result.update_p99_ms,
                cand->result.update_p99_ms, thresholds.p99_tol_frac,
                thresholds.p99_slack_ms, report);
    // Time-to-relocalize binds only where both runs actually recovered from
    // at least one baseline episode (0/0 episodes means nothing to gate).
    if (judge_recovery && base.recovery_success && cand->recovery_success &&
        base.recoveries > 0 && base.time_to_reloc_mean_s > 0.0) {
      check_upper(key, "time_to_reloc_mean_s", base.time_to_reloc_mean_s,
                  cand->time_to_reloc_mean_s, thresholds.reloc_tol_frac,
                  thresholds.reloc_slack_s, report);
    }
  }

  if (thresholds.require_hash_match) {
    for (const FaultTraceFingerprint& base : baseline.fault_traces) {
      const std::string key =
          "fault_traces/" + base.fault + "@" + json::format_number(base.severity);
      const FaultTraceFingerprint* cand = find_fingerprint(candidate, base);
      if (cand == nullptr) {
        report.failures.push_back({key, "missing_trace_hash", 1.0, 0.0, 1.0});
        continue;
      }
      ++report.hashes_compared;
      if (cand->trace_hash != base.trace_hash) {
        report.failures.push_back({key, "trace_hash",
                                   static_cast<double>(base.trace_hash),
                                   static_cast<double>(cand->trace_hash),
                                   static_cast<double>(base.trace_hash)});
      }
    }
  }
  return report;
}

namespace {

const ThroughputCell* find_throughput_cell(const ThroughputDocument& doc,
                                           const ThroughputCell& like) {
  for (const ThroughputCell& cell : doc.cells) {
    if (cell.stage == like.stage && cell.simd == like.simd &&
        cell.particles == like.particles && cell.threads == like.threads) {
      return &cell;
    }
  }
  return nullptr;
}

}  // namespace

CompareReport compare_throughput(const ThroughputDocument& baseline,
                                 const ThroughputDocument& candidate,
                                 const ThroughputThresholds& thresholds) {
  CompareReport report;
  int skipped_avx2 = 0;

  for (const ThroughputCell& base : baseline.cells) {
    const std::string key = base.key();
    const ThroughputCell* cand = find_throughput_cell(candidate, base);
    if (cand == nullptr) {
      // A scalar-only runner cannot produce the baseline's avx2 rows; its
      // scalar rows still gate, so shrinkage is visible, never silent.
      if (base.simd == "avx2" && !candidate.avx2_available) {
        ++skipped_avx2;
        continue;
      }
      report.failures.push_back({key, "missing_cell", 1.0, 0.0, 1.0});
      continue;
    }
    ++report.cells_compared;

    if (cand->beams != base.beams) {
      report.failures.push_back({key, "beams",
                                 static_cast<double>(base.beams),
                                 static_cast<double>(cand->beams),
                                 static_cast<double>(base.beams)});
      continue;  // rates over different work units are not comparable
    }
    if (thresholds.require_hash_match) {
      ++report.hashes_compared;
      if (cand->hash != base.hash) {
        report.failures.push_back({key, "estimate_hash",
                                   static_cast<double>(base.hash),
                                   static_cast<double>(cand->hash),
                                   static_cast<double>(base.hash)});
      }
    }
    if (thresholds.structural_only) continue;

    const double floor = base.items_per_sec * (1.0 - thresholds.tol_frac);
    if (cand->items_per_sec < floor) {
      report.failures.push_back(
          {key, "items_per_sec", base.items_per_sec, cand->items_per_sec,
           floor});
    } else if (cand->items_per_sec >
               base.items_per_sec * (1.0 + thresholds.improve_frac)) {
      char note[160];
      std::snprintf(note, sizeof(note),
                    "%s: improved %.3gx (baseline %.4g -> candidate %.4g "
                    "items/s) — consider refreshing the baseline",
                    key.c_str(), cand->items_per_sec / base.items_per_sec,
                    base.items_per_sec, cand->items_per_sec);
      report.notes.push_back(note);
    }
  }

  if (skipped_avx2 > 0) {
    report.notes.push_back(
        std::to_string(skipped_avx2) +
        " avx2 baseline cells skipped: candidate host lacks AVX2");
  }
  return report;
}

CompareReport compare_tradeoff(const BenchDocument& baseline,
                               const BenchDocument& candidate,
                               const TradeoffThresholds& thresholds) {
  CompareReport report;

  for (const ScenarioCell& base : baseline.cells) {
    if (!base.governed) continue;  // the tradeoff plane is governed-only
    const std::string key = cell_key(base);
    const ScenarioCell* cand = find_cell(candidate, base);
    if (cand == nullptr) {
      report.failures.push_back({key, "missing_cell", 1.0, 0.0, 1.0});
      continue;
    }
    ++report.cells_compared;

    if (cand->result.crashed && !base.result.crashed) {
      report.failures.push_back({key, "crashed", 0.0, 1.0, 0.0});
      continue;  // a crash is not a tradeoff
    }
    if (base.result.crashed || cand->result.crashed) continue;

    // Cost axis: deterministic virtual work units when both sides carry
    // the governor block (they do for governed cells of v4 documents);
    // wall-clock p99 otherwise, so mixed-schema comparisons stay possible.
    const bool virtual_cost =
        base.governor_cost_p99 > 0.0 && cand->governor_cost_p99 > 0.0;
    const double base_cost =
        virtual_cost ? base.governor_cost_p99 : base.result.update_p99_ms;
    const double cand_cost =
        virtual_cost ? cand->governor_cost_p99 : cand->result.update_p99_ms;
    const double base_err = base.result.lateral_mean_cm;
    const double cand_err = cand->result.lateral_mean_cm;

    const double err_limit =
        base_err * (1.0 + thresholds.err_tol_frac) + thresholds.err_slack_cm;
    const double cost_limit =
        base_cost * (1.0 + thresholds.cost_tol_frac) + thresholds.cost_slack;
    const bool err_regressed = cand_err > err_limit;
    const bool cost_regressed = cand_cost > cost_limit;
    const bool err_improved =
        cand_err < base_err * (1.0 - thresholds.improve_frac);
    const bool cost_improved =
        cand_cost < base_cost * (1.0 - thresholds.improve_frac);

    // The tradeoff rule: a regression on one axis passes only when paid
    // for by a genuine improvement on the other (error down at equal
    // cost, or cost down at equal error — both regressing always fails).
    if (err_regressed && !cost_improved) {
      report.failures.push_back(
          {key, "tradeoff_lateral_mean_cm", base_err, cand_err, err_limit});
    }
    if (cost_regressed && !err_improved) {
      report.failures.push_back(
          {key,
           virtual_cost ? "tradeoff_cost_units_p99" : "tradeoff_update_p99_ms",
           base_cost, cand_cost, cost_limit});
    }
    if ((err_improved && !cost_regressed) ||
        (cost_improved && !err_regressed)) {
      char note[200];
      std::snprintf(note, sizeof(note),
                    "%s: tradeoff improved (error %.4g -> %.4g cm, cost "
                    "%.6g -> %.6g)",
                    key.c_str(), base_err, cand_err, base_cost, cand_cost);
      report.notes.push_back(note);
    }
  }

  if (report.cells_compared == 0) {
    report.failures.push_back(
        {"cells", "no_governed_cells", 1.0, 0.0, 1.0});
  }

  // The degradation headline is the gate's anchor claim: shedding keeps
  // the governed stack alive and deadline-clean under full compute
  // pressure where plain budget enforcement starves.
  if (thresholds.require_headline) {
    if (!candidate.has_governor_headline) {
      report.failures.push_back(
          {"governor_headline", "missing", 1.0, 0.0, 1.0});
    } else if (!candidate.governor_headline.graceful()) {
      const GovernorHeadline& gh = candidate.governor_headline;
      report.failures.push_back(
          {"governor_headline", "graceful",
           1.0,
           gh.governed_crashed || gh.governed_misses > 0 ? 0.0 : 0.5,
           1.0});
      char detail[220];
      std::snprintf(detail, sizeof(detail),
                    "headline: governed crashed=%d misses=%" PRIu64
                    ", enforcer crashed=%d misses=%" PRIu64
                    " (need governed clean AND enforcer starved)",
                    gh.governed_crashed ? 1 : 0, gh.governed_misses,
                    gh.enforcer_crashed ? 1 : 0, gh.enforcer_misses);
      report.notes.push_back(detail);
    }
  }
  return report;
}

}  // namespace srl
