#include "eval/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <utility>

namespace srl {

TextTable::TextTable(std::vector<std::string> header)
    : header_{std::move(header)} {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      os << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace srl
