#pragma once

/// \file scenario_matrix.hpp
/// \brief Declarative {localizer x fault x severity} robustness grid — the
/// engine behind `bench_robustness_matrix` and the CI robustness gate.
///
/// Each cell races one localizer closed-loop (eval/experiment.hpp) with a
/// `FaultPipeline` spliced between the simulated sensors and the filter
/// (fault/faulted_localizer.hpp), then scores it with the paper's metrics:
/// lateral-error mu/sigma, scan alignment, update-latency percentiles, plus
/// the PR-1 telemetry health signals (ESS distribution, resamples, pose-jump
/// alarms) for particle-filter cells.
///
/// Cells are independent deterministic simulations (every cell re-seeds from
/// the config), so the grid fans out over the PR-3 `ThreadPool`: results are
/// written per-index and are bitwise identical at any `matrix_threads` —
/// parallelism across cells composes with the filters' own determinism
/// guarantee because each cell pins its filter to one lane
/// (`cell_threads = 1` by default).

#include <cstdint>
#include <string>
#include <vector>

#include "eval/experiment.hpp"
#include "fault/pipeline.hpp"
#include "gridmap/track_generator.hpp"

namespace srl {

/// One fault condition of the grid. `fault` is a canonical factory name
/// (fault/injector.hpp); severity 0 with fault "none" is the clean baseline
/// every degradation is measured against.
struct ScenarioSpec {
  std::string fault{"none"};
  double severity{0.0};

  std::string label() const;  ///< "fault@severity" (e.g. "lidar_dropout@0.5")
};

struct ScenarioMatrixConfig {
  /// Localizer kinds the grid compares; understood: "SynPF", "CartoLite",
  /// "SynPF+Recovery" (SynPF wrapped in a SupervisedLocalizer with the
  /// default detector/policy stack, canonical supervised-outside-faulted
  /// composition), and the governed variants "<kind>+Governor" (compute
  /// governor in shedding mode, outermost) / "<kind>+Budget" (same budget
  /// but *enforcer* mode: fixed workload, over-budget updates are dropped —
  /// the ungoverned baseline the degradation headline compares against).
  std::vector<std::string> localizers{"SynPF", "CartoLite"};
  /// Scenarios. Besides the fault-factory names (fault/injector.hpp) the
  /// matrix understands the pseudo-fault "kidnap": no pipeline stage; the
  /// *true* vehicle is teleported at `kidnap_time` by
  /// `kidnap_advance * severity` of a lap (eval/experiment.hpp kidnaps).
  /// Kidnap cells run until `max_sim_time` instead of the lap budget so the
  /// recovery has room to play out.
  std::vector<ScenarioSpec> scenarios{};
  /// Closed-loop experiment template; mu/laps stay as configured here, the
  /// seed below overrides its seed so the whole matrix shares one.
  ExperimentConfig experiment{};
  std::uint64_t seed = 1234;
  /// Seed of every cell's FaultPipeline (decoupled from the sim seed so the
  /// fault draw schedule survives experiment re-tuning).
  std::uint64_t fault_seed = 0x7a017ULL;
  /// Worker lanes across cells (0 = hardware/SRL_THREADS default).
  int matrix_threads = 0;
  /// Worker lanes inside each particle filter. Keep 1: the matrix already
  /// saturates cores cell-wise, and nested pools oversubscribe.
  int cell_threads = 1;
  int n_particles = 1200;
  /// Kidnap pseudo-fault parameters (see `scenarios`).
  double kidnap_time = 12.0;
  double kidnap_advance = 0.25;  ///< lap fraction teleported at severity 1
  /// Flight recorder (telemetry/flight_recorder.hpp): when non-empty, every
  /// cell runs with a recorder attached and black-box artifacts land here on
  /// divergence/crash/contract triggers. Empty = recorder off — the cells
  /// then run the exact pre-recorder hot path (bitwise no-op guarantee).
  std::string blackbox_dir{};
  /// Track recipe stamped into each black box's rebuild provenance
  /// (PostmortemStackSpec::track). Must name the track `run()` is given.
  std::string track_name{"test_track"};
  /// Per-update latency budget for "+Governor"/"+Budget" cells, ms
  /// (src/governor virtual-cost accounting; benches override this from
  /// SRL_BUDGET_MS). Ignored by ungoverned localizer kinds.
  double budget_ms = 2.0;
};

/// One scored cell. `result` carries the paper metrics; the health block is
/// zero for localizers that expose no particle cloud.
struct ScenarioCell {
  std::string localizer;
  ScenarioSpec scenario;
  ExperimentResult result{};
  // -- filter health (PR-1 telemetry), PF cells only --
  double ess_fraction_p50{0.0};
  double ess_fraction_min{0.0};
  std::uint64_t resamples{0};
  std::uint64_t pose_jump_alarms{0};
  // -- per-stage latency (PF cells; CartoLite reports its own stages) --
  double stage_p50_ms{0.0};  ///< dominant stage (raycast / local match) p50
  double stage_p99_ms{0.0};
  // -- divergence/recovery (experiment episode bookkeeping + recovery
  //    telemetry; `has_recovery` is false only for cells parsed from a
  //    pre-recovery schema-v1 document) --
  bool has_recovery{false};
  bool recovery_success{true};  ///< no crash, every episode closed
  int kidnaps{0};
  int divergence_episodes{0};
  int recoveries{0};
  double time_to_reloc_mean_s{0.0};
  double time_to_reloc_max_s{0.0};
  double post_divergence_lateral_cm{0.0};
  std::uint64_t reinjections{0};       ///< recovery.injections counter
  std::uint64_t global_relocs{0};      ///< recovery.global_relocs counter
  std::uint64_t recovery_transitions{0};  ///< detector state transitions
  // -- event journal (schema v3; zero when parsed from older documents) --
  std::uint64_t events_total{0};
  std::uint64_t events_warn{0};
  std::uint64_t events_error{0};
  std::uint64_t events_critical{0};
  std::uint64_t events_dropped{0};
  /// Black-box artifacts this cell dumped (paths as written, relative to
  /// the bench working directory). Empty when the recorder is off or the
  /// cell never triggered.
  std::vector<std::string> blackboxes{};
  // -- compute governor (schema v4; zero/false for ungoverned cells and
  //    documents older than v4) --
  bool governed{false};        ///< cell ran under a GovernedLocalizer
  bool governor_shed{false};   ///< shedding mode (false = budget enforcer)
  double budget_ms{0.0};
  std::uint64_t governor_updates{0};
  std::uint64_t deadline_misses{0};
  std::uint64_t shed_beam_updates{0};
  std::uint64_t shed_particle_updates{0};
  std::uint64_t skipped_resamples{0};
  std::uint64_t governor_resizes{0};
  double governor_mean_particles{0.0};
  int governor_min_particles{0};
  double governor_mean_beams{0.0};
  double governor_cost_p50{0.0};  ///< virtual work units (deterministic)
  double governor_cost_p99{0.0};
};

class ScenarioMatrix {
 public:
  explicit ScenarioMatrix(ScenarioMatrixConfig config);

  /// Run every {localizer x scenario} cell on `track` and return them in
  /// grid order (localizer-major). Deterministic at any matrix_threads.
  std::vector<ScenarioCell> run(const Track& track) const;

  const ScenarioMatrixConfig& config() const { return config_; }

  /// The canonical reduced grid for CI smoke runs: 2 faults x 2 severities
  /// (clean baseline + slip ramp / dropout), short trace.
  static ScenarioMatrixConfig smoke_config();
  /// The full grid of the robustness bench.
  static ScenarioMatrixConfig full_config();

 private:
  ScenarioMatrixConfig config_;
};

/// The paper's headline, extracted from a finished grid: degradation factor
/// (lateral-error mu at the highest severity of `fault` over the clean
/// baseline) per localizer. A crash under fault is the limit case of
/// degradation — the `*_crashed` flags record it, and the degradation factor
/// is pinned to `kCrashDegradation` (lateral mu of a crashed run is
/// meaningless). Returns false when the grid lacks the cells.
struct HeadlineComparison {
  /// Sentinel degradation factor for a faulted run that crashed: larger
  /// than any factor a completed lap can produce, finite so it serializes.
  static constexpr double kCrashDegradation = 1000.0;

  std::string fault;
  double severity{0.0};
  double synpf_baseline_cm{0.0};
  double synpf_faulted_cm{0.0};
  double synpf_degradation{0.0};  ///< faulted / baseline
  bool synpf_crashed{false};      ///< faulted SynPF run crashed
  double carto_baseline_cm{0.0};
  double carto_faulted_cm{0.0};
  double carto_degradation{0.0};
  bool carto_crashed{false};  ///< faulted CartoLite run crashed
  /// The paper shape: SynPF survives and degrades strictly less than the
  /// Cartographer-style baseline (which may degrade to the point of crash).
  bool synpf_flat() const {
    return !synpf_crashed && synpf_degradation < carto_degradation;
  }
};
bool compute_headline(const std::vector<ScenarioCell>& cells,
                      const std::string& fault, HeadlineComparison& out);

/// The graceful-degradation headline (DESIGN.md §16), extracted from a grid
/// that carries "<kind>+Governor" and "<kind>+Budget" cells under the
/// `compute_pressure` axis at its highest severity: the governed stack must
/// finish un-crashed with bounded lateral-error growth over its own clean
/// baseline, while the budget-enforced twin — same budget, no shedding —
/// misses deadlines (or crashes outright). Returns false when the grid
/// lacks the cells.
struct GovernorHeadline {
  double severity{0.0};
  double budget_ms{0.0};
  double governed_baseline_cm{0.0};  ///< +Governor under fault "none"
  double governed_pressured_cm{0.0};
  double governed_degradation{0.0};  ///< pressured / baseline
  bool governed_crashed{false};
  std::uint64_t governed_misses{0};
  std::uint64_t governed_shed_updates{0};  ///< beam- or particle-shed
  double enforcer_pressured_cm{0.0};
  bool enforcer_crashed{false};
  std::uint64_t enforcer_misses{0};
  /// The claim the CI gate pins: shedding keeps the stack alive and
  /// meeting deadlines where plain enforcement starves or dies.
  bool graceful() const {
    return !governed_crashed && governed_misses == 0 &&
           (enforcer_misses > 0 || enforcer_crashed);
  }
};
bool compute_governor_headline(const std::vector<ScenarioCell>& cells,
                               GovernorHeadline& out);

}  // namespace srl
