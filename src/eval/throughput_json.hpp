#pragma once

/// \file throughput_json.hpp
/// \brief The stable machine-readable sensor-update throughput schema
/// (`srl.bench_throughput/1`) and its (de)serialization.
///
/// `bench_particle_sweep` emits one document per run:
///
///     {
///       "schema": "srl.bench_throughput/1",
///       "provenance":  { compiler, build, seeds, fast_mode, ... },
///       "simd_active": "avx2",
///       "avx2_available": true,
///       "n_scans": 123,
///       "determinism_hash": "0x...",
///       "cells": [ {stage, simd, particles, threads, beams,
///                   mean_ms, items_per_sec, hash} ]
///     }
///
/// Each cell is one (stage, backend, particles, threads) measurement of a
/// fixed open-loop trace replay: `mean_ms` is the stage's mean wall time
/// per scan and `items_per_sec` the beams*particles work rate it implies.
/// `hash` fingerprints the replay's pose estimates bitwise (FNV-1a over
/// the raw doubles), so a rate table doubles as a determinism witness: the
/// hash must be identical across the threads and simd columns of one
/// particle count, and `tools/bench_compare --throughput --hash require`
/// gates on it for same-machine self-compares. Wall-clock rates are gated
/// separately (and generously) against a committed baseline. As with
/// `srl.bench_robustness`, fields may be added but never renamed or
/// repurposed without bumping the version suffix.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"
#include "eval/benchmark_json.hpp"

namespace srl {

inline constexpr const char* kBenchThroughputSchema = "srl.bench_throughput/1";

/// One pipeline stage of one replay configuration.
struct ThroughputCell {
  std::string stage;  ///< "predict" | "raycast" | "weight" | "update"
  std::string simd;   ///< backend name the replay was forced to
  int particles{0};
  int threads{0};
  int beams{0};  ///< scored beams per scan
  double mean_ms{0.0};
  double items_per_sec{0.0};      ///< beams*particles / mean stage seconds
  std::uint64_t hash{0};          ///< estimate fingerprint of the replay

  /// Identity for cross-document pairing: "weight simd=avx2 n=1500 t=4".
  std::string key() const;
};

struct ThroughputDocument {
  BenchProvenance provenance{};
  std::string simd_active;  ///< backend the ambient process resolved to
  bool avx2_available{false};
  int n_scans{0};
  /// FNV-1a fold of every distinct replay hash in emission order — one
  /// number that moves if any estimate bit anywhere in the table moves.
  std::uint64_t determinism_hash{0};
  std::vector<ThroughputCell> cells{};
};

/// Bitwise FNV-1a fingerprint of a replayed estimate sequence.
std::uint64_t estimates_hash(std::span<const Pose2> estimates);

/// Serialize to the schema above (hashes travel as fixed-width hex).
json::Value throughput_to_json(const ThroughputDocument& doc);
bool write_throughput_json(const std::string& path,
                           const ThroughputDocument& doc);

/// Parse a document; nullopt on I/O error, malformed JSON, or an unknown
/// schema string.
std::optional<ThroughputDocument> throughput_from_json(const json::Value& root);
std::optional<ThroughputDocument> read_throughput_json(const std::string& path);

}  // namespace srl
