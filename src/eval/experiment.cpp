#include "eval/experiment.hpp"

#include <cmath>
#include <filesystem>
#include <memory>
#include <sstream>

#include "range/ray_marching.hpp"

namespace srl {

ExperimentRunner::ExperimentRunner(const Track& track, ExperimentConfig config)
    : track_{track},
      config_{config},
      raceline_{config.raceline_override.empty() ? track.centerline
                                                 : config.raceline_override},
      profile_{raceline_, config.profile},
      alignment_{track.grid, config.align_tolerance},
      wall_distance_{distance_to_occupied(track.grid)} {
  auto map = std::make_shared<const OccupancyGrid>(track_.grid);
  truth_caster_ =
      std::make_shared<RayMarching>(std::move(map), config_.lidar.max_range);
}

Pose2 ExperimentRunner::start_pose() const {
  // Slightly past the start line so the first crossing happens after a full
  // out-lap (arming the timer), not immediately.
  const double s0 = 1.0;
  const Vec2 p = raceline_.position(s0);
  return Pose2{p.x, p.y, raceline_.heading(s0)};
}

ExperimentResult ExperimentRunner::run(Localizer& localizer,
                                       SensorTrace* record,
                                       telemetry::Sink sink) {
  ExperimentResult result;
  Rng rng{config_.seed};
  if (sink.enabled()) localizer.set_telemetry(sink);
  telemetry::Histogram update_ms;  // harness-side latency distribution

  // Flight recorder: black-box dumps need the sensor stream alongside the
  // snapshot ring, so with a recorder attached the run always records a
  // trace (the caller's, or a local one that lives only for this run).
  SensorTrace local_trace;
  SensorTrace* rec = record;
  if (sink.recorder != nullptr && rec == nullptr) rec = &local_trace;

  auto emit = [&](double et, telemetry::EventSeverity severity,
                  const char* code, json::Value data) {
    if (sink.events == nullptr) return;
    sink.events->emit(et, severity, telemetry::EventCategory::kExperiment,
                      code, std::move(data));
  };
  // Self-contained black-box dump: snapshot window + event timeline (via
  // the recorder) plus everything a postmortem replay needs — the start
  // pose, the captured sensor trace (sidecar file), the sim seed, and the
  // sim RNG stream state at dump time.
  auto dump_blackbox = [&](const char* reason, double dt_now) {
    if (sink.recorder == nullptr || !sink.recorder->can_dump()) return;
    const std::string path = sink.recorder->next_dump_path(reason);
    if (path.empty()) return;
    json::Value extra = json::Value::object();
    json::Value sp = json::Value::array();
    const Pose2 p0 = start_pose();
    sp.push_back(json::Value::number(p0.x));
    sp.push_back(json::Value::number(p0.y));
    sp.push_back(json::Value::number(p0.theta));
    extra.set("start_pose", std::move(sp));
    extra.set("sim_seed",
              json::Value::number(static_cast<double>(config_.seed)));
    std::ostringstream rng_state;
    rng_state << rng;
    extra.set("sim_rng_state", json::Value::string(rng_state.str()));
    extra.set("crashed", json::Value::boolean(result.crashed));
    if (rec != nullptr) {
      const std::string trace_path =
          telemetry::FlightRecorder::trace_sidecar_path(path);
      // The sidecar lands before dump() creates the artifact directory.
      std::error_code ec;
      std::filesystem::create_directories(
          std::filesystem::path(trace_path).parent_path(), ec);
      if (rec->save(trace_path)) {
        extra.set("trace_file",
                  json::Value::string(
                      std::filesystem::path(trace_path).filename().string()));
      }
    }
    sink.recorder->dump(path, reason, dt_now, extra);
  };
  std::uint64_t seen_critical =
      sink.events != nullptr ? sink.events->critical_count() : 0;
  std::uint64_t tick = 0;

  VehicleParams vp = config_.vehicle;
  vp.mu = config_.mu;
  VehicleSim vehicle{vp, start_pose()};
  WheelOdometrySensor odom_sensor{vp.ackermann, config_.odom_noise};
  LidarSim lidar{config_.lidar, truth_caster_, config_.lidar_noise};
  PurePursuit pursuit{config_.pursuit, vp.ackermann};

  localizer.initialize(start_pose());
  LapTimer timer{raceline_.length()};

  const double odom_dt = 1.0 / config_.odom_rate_hz;
  const double scan_dt = 1.0 / config_.lidar_rate_hz;
  const double ctrl_dt = 1.0 / config_.control_rate_hz;
  double next_odom = 0.0;
  double next_scan = 0.0;
  double next_ctrl = 0.0;

  DriveCommand cmd{};
  double believed_speed = 0.0;
  double t = 0.0;

  RunningStats lap_lateral_cm;      // current lap
  RunningStats alignment_percent;   // all timed-lap scans
  RunningStats post_div_lateral_cm;
  RunningStats post_rec_lateral_cm;
  RunningStats slip_abs;
  RunningStats odom_drift_per_lap;
  double pose_err_sq_sum = 0.0;
  double pose_lat_sq_sum = 0.0;
  double pose_long_sq_sum = 0.0;
  double heading_sq_sum = 0.0;
  long pose_err_samples = 0;
  double odom_dist = 0.0;
  double true_dist = 0.0;
  double lap_odom_dist = 0.0;
  double lap_true_dist = 0.0;

  // Divergence-episode hysteresis on the true-pose estimate error.
  std::size_t kidnap_idx = 0;
  bool episode_open = false;
  int over_run = 0;
  int under_run = 0;
  double episode_open_t = 0.0;
  double first_divergence_t = -1.0;
  double last_recovery_t = -1.0;

  const int want_laps = std::max(config_.laps, 1);
  while (t < config_.max_sim_time &&
         static_cast<int>(result.lap_times.size()) < want_laps) {
    vehicle.step(cmd, config_.sim_dt);
    t += config_.sim_dt;
    const VehicleState& state = vehicle.state();
    true_dist += state.v * config_.sim_dt;
    slip_abs.add(std::abs(state.slip));

    // Crash: true pose too close to (or inside) a wall.
    if (wall_distance_.at_world({state.pose.x, state.pose.y}) <
        static_cast<float>(config_.crash_wall_distance)) {
      result.crashed = true;
      break;
    }

    // Scripted kidnap: teleport the *true* vehicle (at rest) along the race
    // line; the localizer only ever learns through its sensors.
    if (kidnap_idx < config_.kidnaps.size() &&
        t >= config_.kidnaps[kidnap_idx].t) {
      const ExperimentConfig::KidnapSpec& k = config_.kidnaps[kidnap_idx];
      const Raceline::Projection cur =
          raceline_.project({state.pose.x, state.pose.y});
      const double s1 =
          raceline_.wrap(cur.s + k.advance_frac * raceline_.length());
      const Vec2 p = raceline_.position(s1);
      const double h = raceline_.heading(s1);
      const Vec2 normal{-std::sin(h), std::cos(h)};
      vehicle.reset(Pose2{p.x + normal.x * k.lateral_m,
                          p.y + normal.y * k.lateral_m,
                          normalize_angle(h + k.yaw)});
      ++kidnap_idx;
      ++result.kidnaps_applied;
      {
        json::Value data = json::Value::object();
        data.set("advance_frac", json::Value::number(k.advance_frac));
        data.set("lateral_m", json::Value::number(k.lateral_m));
        data.set("yaw", json::Value::number(k.yaw));
        emit(t, telemetry::EventSeverity::kInfo, "experiment.kidnap",
             std::move(data));
      }
    }

    if (t >= next_odom) {
      next_odom += odom_dt;
      const OdometryDelta odom = odom_sensor.measure(state, odom_dt, rng);
      if (rec != nullptr) rec->add_odometry(t, odom);
      localizer.on_odometry(odom);
      believed_speed = odom.v;
      odom_dist += odom.v * odom_dt;
    }

    if (t >= next_scan) {
      next_scan += scan_dt;
      const LaserScan scan = lidar.scan(state.pose, state.twist(), t, rng);
      if (rec != nullptr) rec->add_scan(scan, state.pose);
      Stopwatch update_watch;
      const Pose2 est = localizer.on_scan(scan);
      update_ms.record(update_watch.elapsed_ms());

      // Episode hysteresis: open after `dwell` scans over the open
      // threshold, close after `dwell` scans under the close threshold.
      const double est_err =
          std::hypot(est.x - state.pose.x, est.y - state.pose.y);
      result.final_pose_error_m = est_err;

      if (sink.recorder != nullptr) {
        telemetry::TickSnapshot snap;
        snap.tick = tick;
        snap.t = t;
        snap.est_x = est.x;
        snap.est_y = est.y;
        snap.est_theta = est.theta;
        snap.truth_err_m = est_err;
        sink.recorder->record_tick(std::move(snap));
      }
      ++tick;

      if (!episode_open) {
        if (est_err > config_.divergence_open_m) {
          if (over_run == 0) episode_open_t = t;
          ++over_run;
          if (over_run >= config_.divergence_dwell) {
            episode_open = true;
            under_run = 0;
            ++result.divergence_episodes;
            if (first_divergence_t < 0.0) first_divergence_t = t;
            {
              json::Value data = json::Value::object();
              data.set("error_m", json::Value::number(est_err));
              emit(t, telemetry::EventSeverity::kError,
                   "experiment.divergence_open", std::move(data));
            }
            dump_blackbox("divergence", t);
          }
        } else {
          over_run = 0;
        }
      } else {
        if (est_err < config_.divergence_close_m) {
          ++under_run;
          if (under_run >= config_.divergence_dwell) {
            episode_open = false;
            over_run = 0;
            ++result.recoveries;
            result.time_to_relocalize_s.push_back(t - episode_open_t);
            last_recovery_t = t;
            {
              json::Value data = json::Value::object();
              data.set("duration_s", json::Value::number(t - episode_open_t));
              emit(t, telemetry::EventSeverity::kInfo,
                   "experiment.episode_closed", std::move(data));
            }
          }
        } else {
          under_run = 0;
        }
      }

      // Contract violations (or any other critical event) since the last
      // scan trip a black-box dump of their own.
      if (sink.events != nullptr) {
        const std::uint64_t crit = sink.events->critical_count();
        if (crit > seen_critical) {
          seen_critical = crit;
          dump_blackbox("critical", t);
        }
      }

      if (timer.armed()) {
        alignment_percent.add(alignment_.score(scan, config_.lidar, est));
      }
      if (timer.armed()) {
        const double ex = est.x - state.pose.x;
        const double ey = est.y - state.pose.y;
        pose_err_sq_sum += ex * ex + ey * ey;
        // Decompose along/normal to the race line at the true position.
        const Raceline::Projection p =
            raceline_.project({state.pose.x, state.pose.y});
        const double line_heading = raceline_.heading(p.s);
        const double c = std::cos(line_heading);
        const double sn = std::sin(line_heading);
        const double e_long = c * ex + sn * ey;
        const double e_lat = -sn * ex + c * ey;
        pose_long_sq_sum += e_long * e_long;
        pose_lat_sq_sum += e_lat * e_lat;
        const double e_th = angle_dist(est.theta, state.pose.theta);
        heading_sq_sum += e_th * e_th;
        ++pose_err_samples;
      }
    }

    if (t >= next_ctrl) {
      next_ctrl += ctrl_dt;
      const Pose2 believed = localizer.pose();
      cmd = pursuit.control(believed, believed_speed, raceline_, profile_);
      if (config_.launch_ramp_s > 0.0 && t < config_.launch_ramp_s) {
        cmd.target_speed *= t / config_.launch_ramp_s;
      }

      const Raceline::Projection proj =
          raceline_.project({state.pose.x, state.pose.y});
      if (timer.armed()) {
        lap_lateral_cm.add(std::abs(proj.lateral) * 100.0);
      }
      if (first_divergence_t >= 0.0) {
        post_div_lateral_cm.add(std::abs(proj.lateral) * 100.0);
        if (!episode_open && last_recovery_t >= 0.0 &&
            result.recoveries == result.divergence_episodes &&
            t >= last_recovery_t + config_.recovery_settle_s) {
          post_rec_lateral_cm.add(std::abs(proj.lateral) * 100.0);
        }
      }
      const bool was_armed = timer.armed();
      if (timer.update(proj.s, t)) {
        result.lap_times.push_back(timer.lap_times().back());
        result.lap_lateral_mean_cm.push_back(lap_lateral_cm.mean());
        lap_lateral_cm.reset();
        odom_drift_per_lap.add(std::abs((odom_dist - lap_odom_dist) -
                                        (true_dist - lap_true_dist)));
        lap_odom_dist = odom_dist;
        lap_true_dist = true_dist;
      } else if (!was_armed && timer.armed()) {
        // Timer just armed (out-lap finished): reset lap accumulators.
        lap_lateral_cm.reset();
        lap_odom_dist = odom_dist;
        lap_true_dist = true_dist;
      }
    }
  }

  if (result.crashed) {
    json::Value data = json::Value::object();
    data.set("t", json::Value::number(t));
    emit(t, telemetry::EventSeverity::kCritical, "experiment.crash",
         std::move(data));
    dump_blackbox("crash", t);
  }

  result.sim_time = t;
  result.completed = !result.crashed &&
                     static_cast<int>(result.lap_times.size()) >= want_laps;
  result.lap_time_mean = mean(result.lap_times);
  result.lap_time_std = stddev(result.lap_times);
  result.lateral_mean_cm = mean(result.lap_lateral_mean_cm);
  result.lateral_std_cm = stddev(result.lap_lateral_mean_cm);
  result.scan_alignment = alignment_percent.mean();
  result.mean_update_ms = localizer.mean_scan_update_ms();
  result.update_p50_ms = update_ms.percentile(0.50);
  result.update_p95_ms = update_ms.percentile(0.95);
  result.update_p99_ms = update_ms.percentile(0.99);
  result.update_max_ms = update_ms.max();
  result.load_percent =
      t > 0.0 ? 100.0 * localizer.total_busy_s() / t : 0.0;
  if (pose_err_samples > 0) {
    const auto n = static_cast<double>(pose_err_samples);
    result.pose_rmse_m = std::sqrt(pose_err_sq_sum / n);
    result.pose_lat_rmse_m = std::sqrt(pose_lat_sq_sum / n);
    result.pose_long_rmse_m = std::sqrt(pose_long_sq_sum / n);
    result.heading_rmse_rad = std::sqrt(heading_sq_sum / n);
  }
  result.mean_abs_slip = slip_abs.mean();
  result.odom_drift_m_per_lap = odom_drift_per_lap.mean();
  result.time_to_relocalize_mean_s = mean(result.time_to_relocalize_s);
  for (const double ttr : result.time_to_relocalize_s) {
    result.time_to_relocalize_max_s =
        std::max(result.time_to_relocalize_max_s, ttr);
  }
  result.post_divergence_lateral_cm = post_div_lateral_cm.mean();
  result.post_recovery_lateral_cm = post_rec_lateral_cm.mean();
  result.recovered =
      !result.crashed && result.recoveries == result.divergence_episodes;
  return result;
}

}  // namespace srl
