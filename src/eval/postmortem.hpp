#pragma once

/// \file postmortem.hpp
/// \brief Black-box loading, timeline rendering, and bitwise replay — the
/// analysis half of the flight recorder (telemetry/flight_recorder.hpp).
///
/// A black-box artifact (`srl.blackbox/1` JSON + `.srlt` sensor-trace
/// sidecar) is self-contained: it carries the stack recipe (which localizer,
/// how many particles, which range backend, which fault scenario and seeds),
/// the start pose, the event timeline, and the FNV-1a hash over every
/// estimate the run produced up to the dump. `replay_blackbox` rebuilds the
/// exact localizer stack from the recipe, re-drives the captured sensor
/// stream through it, and checks the replayed estimate-trajectory hash
/// against the recorded one — a *bitwise* reproduction oracle, valid at any
/// thread count because the whole filter stack is thread-count invariant.
///
/// `tools/postmortem` is the CLI face of this module.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"
#include "eval/trace.hpp"
#include "telemetry/events.hpp"

namespace srl {

/// Rebuild recipe for the localizer stack that produced a black box. The
/// harness (scenario matrix, tests) serializes this into the recorder's
/// provenance under `"stack"`; `replay_blackbox` reconstructs from it.
struct PostmortemStackSpec {
  /// Track recipe: "test_track", "hairpin", "oval:<straight>,<radius>"
  /// (default TrackSpec geometry in all cases), or a frontier replay key
  /// "frontier:<seed>:<index>" — the sampled circuit AND the sampled fault
  /// envelope both rebuild from it (eval/frontier/scenario_sampler.hpp),
  /// overriding the canonical `fault`/`severity` pipeline below.
  std::string track{"test_track"};
  /// Localizer kind, same vocabulary as ScenarioMatrixConfig::localizers:
  /// "SynPF", "CartoLite", or a "+Recovery"-suffixed supervised variant.
  std::string localizer{"SynPF"};
  int n_particles{1200};
  int threads{1};
  /// Range backend: "bresenham", "ray_marching", "cddt", or "lut".
  std::string range{"cddt"};
  int beams{60};
  std::uint64_t pf_seed{42};
  /// Fault scenario ("none"/"kidnap" add no pipeline stage — a kidnap
  /// corrupts the truth, not the sensors, and is already baked into the
  /// captured stream).
  std::string fault{"none"};
  double severity{0.0};
  std::uint64_t fault_seed{0x7a017ULL};
  /// Compute-governor wrapper (src/governor): "" none, "govern" shedding
  /// mode, "enforce" budget-enforcer mode. Absent in pre-governor black
  /// boxes — both fields default to the ungoverned stack, so old artifacts
  /// parse and replay unchanged.
  std::string governor{};
  double budget_ms{0.0};
};

json::Value stack_spec_to_json(const PostmortemStackSpec& spec);
bool stack_spec_from_json(const json::Value& v, PostmortemStackSpec& out);

/// One parsed black-box artifact.
struct Blackbox {
  std::string path;  ///< JSON artifact this was loaded from
  std::string reason;
  std::string label;
  double t{0.0};
  std::uint64_t ticks{0};
  std::uint64_t estimate_hash{0};
  Pose2 start_pose{};
  std::uint64_t sim_seed{0};
  std::string sim_rng_state;
  bool crashed{false};
  PostmortemStackSpec stack{};
  bool has_stack{false};
  json::Value provenance{json::Value::object()};
  std::vector<telemetry::Event> events;
  std::uint64_t events_total{0};
  std::uint64_t events_dropped{0};
  json::Value snapshots{json::Value::array()};
  SensorTrace trace;  ///< sidecar stream (may be empty if missing)
  bool has_trace{false};
};

/// Parse `path` (+ its `.srlt` sidecar, resolved relative to the artifact's
/// directory). Returns nullopt on unreadable/invalid JSON or wrong schema;
/// a missing sidecar only clears `has_trace`.
std::optional<Blackbox> load_blackbox(const std::string& path);

/// Human-readable postmortem: provenance header, snapshot-window summary,
/// and the full event timeline.
std::string render_timeline(const Blackbox& box);

struct PostmortemReplay {
  bool ok{false};  ///< stack rebuilt and trace re-driven
  std::uint64_t ticks{0};
  std::uint64_t estimate_hash{0};
  bool bitwise_match{false};  ///< replayed hash == recorded hash
  std::string error;
};

/// Re-drive the captured stream through a freshly rebuilt stack, exactly as
/// the closed loop delivered it (all odometry with t <= scan.t before each
/// scan; initialized at the recorded start pose), and compare the replayed
/// estimate-trajectory hash with the recorded one. `threads` overrides the
/// recorded filter lane count (0 = as recorded) — the hash must not change.
PostmortemReplay replay_blackbox(const Blackbox& box, int threads = 0);

}  // namespace srl
