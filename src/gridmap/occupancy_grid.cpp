#include "gridmap/occupancy_grid.hpp"

#include <algorithm>
#include <cmath>

namespace srl {

OccupancyGrid::OccupancyGrid(int width, int height, double resolution,
                             Vec2 origin, std::int8_t fill)
    : width_{std::max(width, 0)},
      height_{std::max(height, 0)},
      resolution_{resolution},
      origin_{origin},
      data_(static_cast<std::size_t>(width_) * height_, fill) {}

std::size_t OccupancyGrid::count(std::int8_t value) const {
  return static_cast<std::size_t>(
      std::count(data_.begin(), data_.end(), value));
}

double OccupancyGrid::diagonal() const {
  return std::hypot(world_width(), world_height());
}

}  // namespace srl
