#pragma once

/// \file morphology.hpp
/// \brief Grid morphology: obstacle inflation. Used to build the planner /
/// controller safety margin (the car's half width) without touching the map
/// the localizers observe.

#include "gridmap/occupancy_grid.hpp"

namespace srl {

/// Return a copy of `grid` with every ray-blocking cell dilated by `radius`
/// meters (Euclidean). Free cells within `radius` of a blocking cell become
/// occupied. Implemented via the distance transform, O(cells).
OccupancyGrid inflate(const OccupancyGrid& grid, double radius);

}  // namespace srl
