#include "gridmap/morphology.hpp"

#include "gridmap/distance_transform.hpp"

namespace srl {

OccupancyGrid inflate(const OccupancyGrid& grid, double radius) {
  OccupancyGrid out = grid;
  if (radius <= 0.0) return out;
  const DistanceField df = distance_transform(grid);
  for (int iy = 0; iy < grid.height(); ++iy) {
    for (int ix = 0; ix < grid.width(); ++ix) {
      if (grid.at(ix, iy) == OccupancyGrid::kFree &&
          df.at(ix, iy) <= static_cast<float>(radius)) {
        out.at(ix, iy) = OccupancyGrid::kOccupied;
      }
    }
  }
  return out;
}

}  // namespace srl
