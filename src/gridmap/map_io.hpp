#pragma once

/// \file map_io.hpp
/// \brief Occupancy-grid persistence in the ROS map_server convention:
/// a binary PGM (P5) image plus a small YAML-like metadata file. Lets the
/// examples save maps produced by the SLAM pipeline and reload them for
/// pure localization, exactly like the paper's workflow (map once with
/// Cartographer, then race with a localizer against the saved map).

#include <optional>
#include <string>

#include "gridmap/occupancy_grid.hpp"

namespace srl {

/// Save `grid` as `<path>.pgm` + `<path>.yaml`. PGM rows are written top-down
/// (image convention), so row 0 of the image is the highest-y map row.
/// Returns false on I/O failure.
bool save_map(const OccupancyGrid& grid, const std::string& path_stem);

/// Load a map previously written by save_map. Returns nullopt on failure.
std::optional<OccupancyGrid> load_map(const std::string& path_stem);

}  // namespace srl
