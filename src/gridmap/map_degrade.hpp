#pragma once

/// \file map_degrade.hpp
/// \brief Synthetic SLAM-map imperfections.
///
/// Real localization maps are built by a SLAM pass, not rendered from
/// ground truth: walls are ragged (discretization + sensor noise), locally
/// displaced (residual pose error), and occasionally broken. Localizers
/// react differently to this raggedness — a beam-model particle filter
/// compares exact expected ranges and feels every cell of wall error, while
/// a likelihood-field matcher blurs over it. The evaluation harness
/// therefore localizes against a degraded copy of the ground-truth map.

#include "common/rng.hpp"
#include "gridmap/occupancy_grid.hpp"

namespace srl {

struct MapDegradeParams {
  /// Probability that a wall-surface cell is shaved off (becomes unknown).
  double erode_prob = 0.12;
  /// Probability that a free cell touching a wall grows an extra wall cell.
  double dilate_prob = 0.12;
  /// Low-frequency wall displacement amplitude (m): boundaries shift by a
  /// smoothly varying offset, mimicking residual SLAM warp.
  double warp_amplitude = 0.015;
  /// Wavelength of the warp (m).
  double warp_wavelength = 6.0;
};

/// Return a degraded copy of `map`, reproducible from `rng`.
OccupancyGrid degrade_map(const OccupancyGrid& map, Rng& rng,
                          const MapDegradeParams& params = {});

}  // namespace srl
