#pragma once

/// \file track_generator.hpp
/// \brief Synthetic race-track generation.
///
/// The paper evaluates on a physical corridor-like test track; we substitute
/// parametric closed circuits rasterized to occupancy grids: free corridor,
/// occupied wall band, unknown beyond. Each track carries its centerline so
/// the race line, lap timing, and lateral-deviation metrics are well defined.

#include <vector>

#include "common/rng.hpp"
#include "gridmap/occupancy_grid.hpp"

namespace srl {

/// A generated circuit: map + geometry metadata.
struct Track {
  OccupancyGrid grid;
  std::vector<Vec2> centerline;  ///< closed, uniformly resampled, CCW
  double half_width{1.1};        ///< corridor half width, m
};

/// Geometric/rasterization parameters common to all generated tracks.
struct TrackSpec {
  double half_width = 1.1;      ///< m; F1TENTH corridors are ~2.2 m wide
  double resolution = 0.05;     ///< m per cell
  double wall_thickness = 0.20; ///< m of occupied band outside the corridor
  double margin = 0.5;          ///< m of unknown padding to the map border
  double centerline_ds = 0.10;  ///< m between resampled centerline points
};

/// Factory for canonical circuits.
class TrackGenerator {
 public:
  /// Stadium oval: two straights of `straight_len` joined by semicircles of
  /// `radius` (centerline radius), centered at the origin, CCW.
  static Track oval(double straight_len, double radius,
                    const TrackSpec& spec = {});

  /// Build a track from closed waypoints (smoothed with Chaikin corner
  /// cutting before rasterization). Waypoints are the desired centerline.
  static Track from_waypoints(const std::vector<Vec2>& waypoints,
                              const TrackSpec& spec = {},
                              int smooth_iterations = 3);

  /// Rounded-rectangle circuit: straights of `length` x `width` (centerline
  /// box) joined by quarter-circle corners of `corner_radius`, CCW.
  static Track rounded_rect(double length, double width, double corner_radius,
                            const TrackSpec& spec = {});

  /// The default "test track" of the Table-I experiment: a 16 x 9 m
  /// rounded-rectangle club circuit with 2.6 m corners. The geometry is
  /// chosen so the speed profile's corner demand (a_lat 7.0 m/s^2) sits
  /// just inside nominal grip (mu 0.76 -> 7.45 m/s^2) and well beyond
  /// taped-tire grip (mu 0.55 -> 5.4 m/s^2) — the paper's "same speed
  /// scaling, different grip" regime.
  static Track test_track(const TrackSpec& spec = {});

  /// A hairpin-heavy circuit that stresses high-curvature localization.
  static Track hairpin(const TrackSpec& spec = {});

  /// Random smooth circuit: n waypoints on a radius-R circle with radial
  /// jitter, Chaikin-smoothed. Useful for property tests and sweeps.
  static Track random_circuit(Rng& rng, int n_waypoints, double radius,
                              double jitter, const TrackSpec& spec = {});

  /// Rasterize a closed centerline into an occupancy grid per `spec`.
  /// Exposed so tests can validate the rasterization independently.
  static Track rasterize(const std::vector<Vec2>& centerline,
                         const TrackSpec& spec);
};

}  // namespace srl
