#pragma once

/// \file distance_transform.hpp
/// \brief Exact Euclidean distance transform (Felzenszwalb & Huttenlocher)
/// over occupancy grids. The resulting field gives, for every cell, the
/// distance in meters to the nearest ray-blocking cell — the core
/// acceleration structure for ray-marching range queries and for the
/// scan-alignment metric.

#include <vector>

#include "gridmap/occupancy_grid.hpp"

namespace srl {

/// A dense field of distances (meters) sharing an OccupancyGrid's geometry.
class DistanceField {
 public:
  DistanceField() = default;
  DistanceField(int width, int height, double resolution, Vec2 origin)
      : width_{width},
        height_{height},
        resolution_{resolution},
        origin_{origin},
        data_(static_cast<std::size_t>(width) * height, 0.0F) {}

  int width() const { return width_; }
  int height() const { return height_; }
  double resolution() const { return resolution_; }
  const Vec2& origin() const { return origin_; }

  bool in_bounds(int ix, int iy) const {
    return ix >= 0 && iy >= 0 && ix < width_ && iy < height_;
  }

  float at(int ix, int iy) const {
    SYNPF_EXPECTS_MSG(in_bounds(ix, iy), "distance field read out of bounds");
    return data_[static_cast<std::size_t>(iy) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(ix)];
  }
  float& at(int ix, int iy) {
    SYNPF_EXPECTS_MSG(in_bounds(ix, iy), "distance field write out of bounds");
    return data_[static_cast<std::size_t>(iy) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(ix)];
  }
  /// Distance at cell, or 0 outside the map (the border blocks rays).
  float at_or_zero(int ix, int iy) const {
    return in_bounds(ix, iy) ? at(ix, iy) : 0.0F;
  }

  /// Distance at a world point (nearest cell, no interpolation). Defined for
  /// any input: far-away / non-finite points read as 0 ("border blocks"),
  /// via the same UB-safe cast as `OccupancyGrid::world_to_grid`.
  float at_world(const Vec2& w) const {
    const int ix = floor_to_cell((w.x - origin_.x) / resolution_);
    const int iy = floor_to_cell((w.y - origin_.y) / resolution_);
    return at_or_zero(ix, iy);
  }

  /// Bilinearly interpolated distance at a world point; clamps to the border.
  float interpolate(const Vec2& w) const;

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

 private:
  int width_{0};
  int height_{0};
  double resolution_{0.05};
  Vec2 origin_{};
  std::vector<float> data_;
};

/// Compute the exact Euclidean distance (meters) from every cell to the
/// nearest cell for which `blocks_ray` is true. Blocking cells get 0.
/// O(width * height) via two 1-D lower-envelope passes.
DistanceField distance_transform(const OccupancyGrid& grid);

/// Distance to the nearest *occupied* cell only (unknown treated as free);
/// used by the scan-alignment metric, which scores hits against walls.
DistanceField distance_to_occupied(const OccupancyGrid& grid);

}  // namespace srl
