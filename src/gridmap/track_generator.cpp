#include "gridmap/track_generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/angles.hpp"
#include "common/polyline.hpp"

namespace srl {
namespace {

/// Stamp a disk of world radius `r` around world point `c`, assigning `value`
/// to every covered cell that currently satisfies `pred`.
template <typename Pred>
void stamp_disk(OccupancyGrid& grid, const Vec2& c, double r,
                std::int8_t value, Pred pred) {
  const double res = grid.resolution();
  const GridIndex center = grid.world_to_grid(c);
  const int rad = static_cast<int>(std::ceil(r / res)) + 1;
  const double r2 = r * r;
  for (int dy = -rad; dy <= rad; ++dy) {
    for (int dx = -rad; dx <= rad; ++dx) {
      const int ix = center.ix + dx;
      const int iy = center.iy + dy;
      if (!grid.in_bounds(ix, iy)) continue;
      const Vec2 p = grid.grid_to_world(ix, iy);
      if ((p - c).squared_norm() > r2) continue;
      std::int8_t& cell = grid.at(ix, iy);
      if (pred(cell)) cell = value;
    }
  }
}

}  // namespace

Track TrackGenerator::rasterize(const std::vector<Vec2>& centerline,
                                const TrackSpec& spec) {
  Track track;
  track.half_width = spec.half_width;
  track.centerline = resample_closed(centerline, spec.centerline_ds);
  // Tracks are canonically CCW so Frenet lateral deviation has a consistent
  // sign (positive toward the inside).
  if (signed_area(track.centerline) < 0.0) {
    std::reverse(track.centerline.begin(), track.centerline.end());
  }

  // Bounding box with room for corridor, wall band and margin.
  const double pad = spec.half_width + spec.wall_thickness + spec.margin;
  double min_x = centerline.front().x;
  double max_x = min_x;
  double min_y = centerline.front().y;
  double max_y = min_y;
  for (const Vec2& p : track.centerline) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const Vec2 origin{min_x - pad, min_y - pad};
  const int w = static_cast<int>(
      std::ceil((max_x - min_x + 2.0 * pad) / spec.resolution));
  const int h = static_cast<int>(
      std::ceil((max_y - min_y + 2.0 * pad) / spec.resolution));
  track.grid =
      OccupancyGrid{w, h, spec.resolution, origin, OccupancyGrid::kUnknown};

  // Stamp walls first (corridor + wall band), then carve the free corridor
  // out of the band. Sampling at half-resolution steps guarantees coverage.
  const std::vector<Vec2> dense =
      resample_closed(track.centerline, spec.resolution * 0.5);
  const double wall_r = spec.half_width + spec.wall_thickness;
  for (const Vec2& p : dense) {
    stamp_disk(track.grid, p, wall_r, OccupancyGrid::kOccupied,
               [](std::int8_t v) { return v == OccupancyGrid::kUnknown; });
  }
  for (const Vec2& p : dense) {
    stamp_disk(track.grid, p, spec.half_width, OccupancyGrid::kFree,
               [](std::int8_t) { return true; });
  }
  return track;
}

Track TrackGenerator::oval(double straight_len, double radius,
                           const TrackSpec& spec) {
  std::vector<Vec2> pts;
  const double hs = 0.5 * straight_len;
  const int arc_steps = std::max(16, static_cast<int>(kPi * radius / 0.2));
  // Bottom straight, left to right, at y = -radius (CCW circuit).
  pts.emplace_back(-hs, -radius);
  pts.emplace_back(hs, -radius);
  // Right semicircle around (hs, 0) from -90 to +90 degrees.
  for (int i = 1; i < arc_steps; ++i) {
    const double a = -kPi / 2.0 + kPi * i / arc_steps;
    pts.emplace_back(hs + radius * std::cos(a), radius * std::sin(a));
  }
  // Top straight, right to left, at y = +radius.
  pts.emplace_back(hs, radius);
  pts.emplace_back(-hs, radius);
  // Left semicircle around (-hs, 0) from 90 to 270 degrees.
  for (int i = 1; i < arc_steps; ++i) {
    const double a = kPi / 2.0 + kPi * i / arc_steps;
    pts.emplace_back(-hs + radius * std::cos(a), radius * std::sin(a));
  }
  return rasterize(pts, spec);
}

Track TrackGenerator::from_waypoints(const std::vector<Vec2>& waypoints,
                                     const TrackSpec& spec,
                                     int smooth_iterations) {
  return rasterize(chaikin_closed(waypoints, smooth_iterations), spec);
}

Track TrackGenerator::rounded_rect(double length, double width,
                                   double corner_radius,
                                   const TrackSpec& spec) {
  std::vector<Vec2> pts;
  const double r = std::min({corner_radius, length / 2.0, width / 2.0});
  const double hx = length / 2.0 - r;  // straight half-extents
  const double hy = width / 2.0 - r;
  const int arc_steps = std::max(8, static_cast<int>(0.5 * kPi * r / 0.15));

  const auto arc = [&](Vec2 center, double a0) {
    for (int i = 0; i <= arc_steps; ++i) {
      const double a = a0 + 0.5 * kPi * i / arc_steps;
      pts.emplace_back(center.x + r * std::cos(a), center.y + r * std::sin(a));
    }
  };
  // CCW from the bottom straight: E, NE corner, N... (centerline box
  // length x width centered at the origin).
  pts.emplace_back(-hx, -hy - r);
  pts.emplace_back(hx, -hy - r);
  arc({hx, -hy}, -kPi / 2.0);
  pts.emplace_back(hx + r, hy);
  arc({hx, hy}, 0.0);
  pts.emplace_back(-hx, hy + r);
  arc({-hx, hy}, kPi / 2.0);
  pts.emplace_back(-hx - r, -hy);
  arc({-hx, -hy}, kPi);
  return rasterize(pts, spec);
}

Track TrackGenerator::test_track(const TrackSpec& spec) {
  return rounded_rect(16.0, 9.0, 2.6, spec);
}

Track TrackGenerator::hairpin(const TrackSpec& spec) {
  // Two long parallel straights joined by tight 180-degree turns plus a
  // mid-track pinch — stresses heading estimation at high curvature.
  const std::vector<Vec2> wps = {
      {0.0, 0.0},  {5.0, 0.0},  {10.0, 0.0},  {13.0, 0.5}, {14.5, 2.25},
      {13.0, 4.0}, {10.0, 4.5}, {5.0, 4.5},   {0.0, 4.5},  {-3.0, 5.0},
      {-4.5, 6.75}, {-3.0, 8.5}, {0.0, 9.0},  {5.0, 9.0},  {10.0, 9.0},
      {13.0, 9.5}, {14.5, 11.25}, {13.0, 13.0}, {10.0, 13.5}, {5.0, 13.5},
      {0.0, 13.5}, {-6.0, 13.0}, {-8.5, 9.0},  {-8.5, 4.5}, {-6.0, 0.5},
  };
  return from_waypoints(wps, spec, 3);
}

Track TrackGenerator::random_circuit(Rng& rng, int n_waypoints, double radius,
                                     double jitter, const TrackSpec& spec) {
  std::vector<Vec2> wps;
  const int n = std::max(5, n_waypoints);
  wps.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double a = kTwoPi * i / n;
    const double r =
        std::max(3.0 * spec.half_width, radius + rng.uniform(-jitter, jitter));
    wps.emplace_back(r * std::cos(a), r * std::sin(a));
  }
  return from_waypoints(wps, spec, 3);
}

}  // namespace srl
