#include "gridmap/map_io.hpp"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace srl {
namespace {

constexpr unsigned char kPgmFree = 254;
constexpr unsigned char kPgmOccupied = 0;
constexpr unsigned char kPgmUnknown = 205;  // map_server convention

unsigned char cell_to_gray(std::int8_t v) {
  if (v == OccupancyGrid::kFree) return kPgmFree;
  if (v == OccupancyGrid::kOccupied) return kPgmOccupied;
  return kPgmUnknown;
}

std::int8_t gray_to_cell(unsigned char g) {
  // Threshold like map_server: dark = occupied, light = free.
  if (g < 100) return OccupancyGrid::kOccupied;
  if (g > 240) return OccupancyGrid::kFree;
  return OccupancyGrid::kUnknown;
}

}  // namespace

bool save_map(const OccupancyGrid& grid, const std::string& path_stem) {
  {
    std::ofstream pgm{path_stem + ".pgm", std::ios::binary};
    if (!pgm) return false;
    pgm << "P5\n"
        << grid.width() << " " << grid.height() << "\n255\n";
    std::vector<unsigned char> row(static_cast<std::size_t>(grid.width()));
    for (int iy = grid.height() - 1; iy >= 0; --iy) {
      for (int ix = 0; ix < grid.width(); ++ix)
        row[static_cast<std::size_t>(ix)] = cell_to_gray(grid.at(ix, iy));
      pgm.write(reinterpret_cast<const char*>(row.data()),
                static_cast<std::streamsize>(row.size()));
    }
    if (!pgm) return false;
  }
  std::ofstream yaml{path_stem + ".yaml"};
  if (!yaml) return false;
  yaml << "image: " << path_stem << ".pgm\n"
       << "resolution: " << grid.resolution() << "\n"
       << "origin: [" << grid.origin().x << ", " << grid.origin().y
       << ", 0.0]\n"
       << "negate: 0\noccupied_thresh: 0.65\nfree_thresh: 0.196\n";
  return static_cast<bool>(yaml);
}

std::optional<OccupancyGrid> load_map(const std::string& path_stem) {
  double resolution = 0.05;
  Vec2 origin{};
  {
    std::ifstream yaml{path_stem + ".yaml"};
    if (!yaml) return std::nullopt;
    std::string line;
    while (std::getline(yaml, line)) {
      std::istringstream is{line};
      std::string key;
      is >> key;
      if (key == "resolution:") {
        is >> resolution;
      } else if (key == "origin:") {
        char c = 0;
        is >> c >> origin.x >> c >> origin.y;
      }
    }
  }
  std::ifstream pgm{path_stem + ".pgm", std::ios::binary};
  if (!pgm) return std::nullopt;
  std::string magic;
  pgm >> magic;
  if (magic != "P5") return std::nullopt;
  // Skip comments and read dimensions + maxval.
  auto next_int = [&pgm]() -> int {
    std::string tok;
    while (pgm >> tok) {
      if (tok[0] == '#') {
        std::string rest;
        std::getline(pgm, rest);
        continue;
      }
      return std::stoi(tok);
    }
    return -1;
  };
  const int w = next_int();
  const int h = next_int();
  const int maxval = next_int();
  if (w <= 0 || h <= 0 || maxval <= 0 || maxval > 255) return std::nullopt;
  pgm.get();  // single whitespace after maxval

  OccupancyGrid grid{w, h, resolution, origin};
  std::vector<unsigned char> row(static_cast<std::size_t>(w));
  for (int iy = h - 1; iy >= 0; --iy) {
    pgm.read(reinterpret_cast<char*>(row.data()),
             static_cast<std::streamsize>(row.size()));
    if (!pgm) return std::nullopt;
    for (int ix = 0; ix < w; ++ix)
      grid.at(ix, iy) = gray_to_cell(row[static_cast<std::size_t>(ix)]);
  }
  return grid;
}

}  // namespace srl
