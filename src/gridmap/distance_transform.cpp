#include "gridmap/distance_transform.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace srl {
namespace {

// Large finite seed for non-site cells. Any real squared cell distance in a
// map is far below this, so it only survives when a row/column has no site.
constexpr double kBig = 1e12;

/// 1-D squared distance transform of sampled function f (Felzenszwalb &
/// Huttenlocher, "Distance Transforms of Sampled Functions", 2012):
/// d[q] = min_p (q - p)^2 + f[p]. `v`/`z` are scratch (size n, n+1).
void dt_1d(const std::vector<double>& f, std::vector<double>& d,
           std::vector<int>& v, std::vector<double>& z, int n) {
  int k = 0;
  v[0] = 0;
  z[0] = -kBig;
  z[1] = kBig;
  for (int q = 1; q < n; ++q) {
    double s = 0.0;
    while (true) {
      const int p = v[k];
      s = ((f[q] + static_cast<double>(q) * q) -
           (f[p] + static_cast<double>(p) * p)) /
          (2.0 * (q - p));
      if (s > z[k]) break;
      --k;
      if (k < 0) break;
    }
    ++k;
    v[k] = q;
    z[k] = (k == 0) ? -kBig : s;
    z[k + 1] = kBig;
  }
  k = 0;
  for (int q = 0; q < n; ++q) {
    while (z[k + 1] < static_cast<double>(q)) ++k;
    const int p = v[k];
    const double dq = static_cast<double>(q - p);
    d[q] = dq * dq + f[p];
  }
}

template <typename BlockPredicate>
DistanceField transform_impl(const OccupancyGrid& grid, BlockPredicate blocks) {
  const int w = grid.width();
  const int h = grid.height();
  DistanceField field{w, h, grid.resolution(), grid.origin()};
  if (w == 0 || h == 0) return field;

  std::vector<double> sq(static_cast<std::size_t>(w) * h, kBig);
  for (int iy = 0; iy < h; ++iy) {
    for (int ix = 0; ix < w; ++ix) {
      if (blocks(ix, iy)) sq[static_cast<std::size_t>(iy) * w + ix] = 0.0;
    }
  }

  const int n = std::max(w, h);
  std::vector<double> f(n);
  std::vector<double> d(n);
  std::vector<int> v(n);
  std::vector<double> z(n + 1);

  for (int ix = 0; ix < w; ++ix) {
    for (int iy = 0; iy < h; ++iy)
      f[iy] = sq[static_cast<std::size_t>(iy) * w + ix];
    dt_1d(f, d, v, z, h);
    for (int iy = 0; iy < h; ++iy)
      sq[static_cast<std::size_t>(iy) * w + ix] = d[iy];
  }
  const double diag = grid.diagonal();
  for (int iy = 0; iy < h; ++iy) {
    for (int ix = 0; ix < w; ++ix)
      f[ix] = sq[static_cast<std::size_t>(iy) * w + ix];
    dt_1d(f, d, v, z, w);
    for (int ix = 0; ix < w; ++ix) {
      // Cap at the map diagonal so maps without any blocking cell still
      // yield a finite, meaningful field.
      const double meters = std::sqrt(d[ix]) * grid.resolution();
      field.at(ix, iy) = static_cast<float>(std::min(meters, diag));
    }
  }
  return field;
}

}  // namespace

float DistanceField::interpolate(const Vec2& w) const {
  if (width_ < 2 || height_ < 2) return at_or_zero(0, 0);
  // Sample positions are cell centers.
  const double gx = (w.x - origin_.x) / resolution_ - 0.5;
  const double gy = (w.y - origin_.y) / resolution_ - 0.5;
  const int x0 = std::clamp(static_cast<int>(std::floor(gx)), 0, width_ - 2);
  const int y0 = std::clamp(static_cast<int>(std::floor(gy)), 0, height_ - 2);
  const double tx = std::clamp(gx - x0, 0.0, 1.0);
  const double ty = std::clamp(gy - y0, 0.0, 1.0);
  const double d00 = at(x0, y0);
  const double d10 = at(x0 + 1, y0);
  const double d01 = at(x0, y0 + 1);
  const double d11 = at(x0 + 1, y0 + 1);
  const double top = d00 + tx * (d10 - d00);
  const double bot = d01 + tx * (d11 - d01);
  return static_cast<float>(top + ty * (bot - top));
}

DistanceField distance_transform(const OccupancyGrid& grid) {
  return transform_impl(grid,
                        [&](int ix, int iy) { return grid.blocks_ray(ix, iy); });
}

DistanceField distance_to_occupied(const OccupancyGrid& grid) {
  return transform_impl(
      grid, [&](int ix, int iy) { return grid.is_occupied(ix, iy); });
}

}  // namespace srl
