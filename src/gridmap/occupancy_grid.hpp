#pragma once

/// \file occupancy_grid.hpp
/// \brief 2-D occupancy grid map with world<->grid transforms.
///
/// Cell values follow the ROS occupancy convention: 0 = free, 100 = occupied,
/// -1 = unknown. The grid is axis-aligned; `origin` is the world position of
/// the lower-left corner of cell (0, 0). Cell (ix, iy) covers the world box
/// [origin + ix*res, origin + (ix+1)*res) x [... iy ...).

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace srl {

/// Integer cell coordinate.
struct GridIndex {
  int ix{0};
  int iy{0};
  bool operator==(const GridIndex&) const = default;
};

/// Floor a world-to-grid coordinate to an int cell index without undefined
/// behavior: converting a double outside int's range (or NaN) to int is UB,
/// and localization queries legitimately arrive with arbitrary poses (a
/// diverged filter, a fuzzer, a caller bug). Values beyond +-1e9 cells — far
/// larger than any representable map — clamp to a +-1e9 sentinel, and NaN
/// maps to the negative sentinel, so every downstream bounds check simply
/// reports out-of-bounds.
inline int floor_to_cell(double v) {
  constexpr double kLimit = 1e9;  // well inside int range
  const double c = std::floor(v);
  if (!(c >= -kLimit)) return -1000000000;  // also catches NaN
  if (c > kLimit) return 1000000000;
  return static_cast<int>(c);
}

class OccupancyGrid {
 public:
  static constexpr std::int8_t kFree = 0;
  static constexpr std::int8_t kOccupied = 100;
  static constexpr std::int8_t kUnknown = -1;

  OccupancyGrid() = default;

  /// Create a w x h grid with `resolution` meters per cell, lower-left corner
  /// at `origin`, filled with `fill`.
  OccupancyGrid(int width, int height, double resolution, Vec2 origin,
                std::int8_t fill = kUnknown);

  int width() const { return width_; }
  int height() const { return height_; }
  double resolution() const { return resolution_; }
  const Vec2& origin() const { return origin_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  bool in_bounds(int ix, int iy) const {
    return ix >= 0 && iy >= 0 && ix < width_ && iy < height_;
  }
  bool in_bounds(const GridIndex& g) const { return in_bounds(g.ix, g.iy); }

  std::int8_t at(int ix, int iy) const {
    SYNPF_EXPECTS_MSG(in_bounds(ix, iy), "occupancy grid read out of bounds");
    return data_[static_cast<std::size_t>(iy) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(ix)];
  }
  std::int8_t& at(int ix, int iy) {
    SYNPF_EXPECTS_MSG(in_bounds(ix, iy), "occupancy grid write out of bounds");
    return data_[static_cast<std::size_t>(iy) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(ix)];
  }

  /// Value at cell, or kOccupied when out of bounds (conservative for
  /// ray casting: the world ends at the map border).
  std::int8_t at_or_occupied(int ix, int iy) const {
    return in_bounds(ix, iy) ? at(ix, iy) : kOccupied;
  }

  /// Cell containing the world point (floor). Defined for *any* input —
  /// far-away, infinite or NaN points land on an out-of-bounds sentinel cell
  /// rather than invoking a UB double->int cast (see `floor_to_cell`).
  GridIndex world_to_grid(const Vec2& w) const {
    return {floor_to_cell((w.x - origin_.x) / resolution_),
            floor_to_cell((w.y - origin_.y) / resolution_)};
  }

  /// World position of the center of a cell.
  Vec2 grid_to_world(int ix, int iy) const {
    return {origin_.x + (ix + 0.5) * resolution_,
            origin_.y + (iy + 0.5) * resolution_};
  }
  Vec2 grid_to_world(const GridIndex& g) const {
    return grid_to_world(g.ix, g.iy);
  }

  /// Whether a cell blocks a LiDAR ray. Unknown cells block by default
  /// (outside the mapped corridor nothing is observable).
  bool blocks_ray(int ix, int iy) const {
    const std::int8_t v = at_or_occupied(ix, iy);
    return v == kOccupied || v == kUnknown;
  }
  bool is_free(int ix, int iy) const { return at_or_occupied(ix, iy) == kFree; }
  bool is_occupied(int ix, int iy) const {
    return at_or_occupied(ix, iy) == kOccupied;
  }

  bool is_free_at(const Vec2& w) const {
    const GridIndex g = world_to_grid(w);
    return is_free(g.ix, g.iy);
  }
  bool is_occupied_at(const Vec2& w) const {
    const GridIndex g = world_to_grid(w);
    return is_occupied(g.ix, g.iy);
  }

  /// Number of cells holding `value`.
  std::size_t count(std::int8_t value) const;

  /// Length of the map diagonal in meters — an upper bound for any in-map
  /// range measurement; used as the "max range" sentinel by ray casters.
  double diagonal() const;

  /// World-space extents.
  double world_width() const { return width_ * resolution_; }
  double world_height() const { return height_ * resolution_; }

  const std::vector<std::int8_t>& data() const { return data_; }
  std::vector<std::int8_t>& data() { return data_; }

 private:
  int width_{0};
  int height_{0};
  double resolution_{0.05};
  Vec2 origin_{};
  std::vector<std::int8_t> data_;
};

}  // namespace srl
