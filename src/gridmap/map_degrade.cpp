#include "gridmap/map_degrade.hpp"

#include <algorithm>
#include <cmath>

#include "common/angles.hpp"

namespace srl {

OccupancyGrid degrade_map(const OccupancyGrid& map, Rng& rng,
                          const MapDegradeParams& params) {
  OccupancyGrid out = map;
  const int w = map.width();
  const int h = map.height();

  // Low-frequency warp: shift each boundary cell's classification by a
  // smooth pseudo-random phase field. Implemented as a small probability
  // modulation so the result stays a valid grid without resampling.
  const double phase_x = rng.uniform(0.0, kTwoPi);
  const double phase_y = rng.uniform(0.0, kTwoPi);
  const double k =
      params.warp_wavelength > 0.0 ? kTwoPi / params.warp_wavelength : 0.0;

  for (int iy = 0; iy < h; ++iy) {
    for (int ix = 0; ix < w; ++ix) {
      const std::int8_t v = map.at(ix, iy);
      const Vec2 p = map.grid_to_world(ix, iy);
      const double warp =
          params.warp_amplitude *
          (std::sin(k * p.x + phase_x) + std::cos(k * p.y + phase_y)) / 2.0;
      // Warp tilts the erode/dilate balance: positive warp grows walls on
      // this side, negative shaves them — a coherent displacement rather
      // than white noise.
      const double bias = warp / std::max(map.resolution(), 1e-6);

      if (v == OccupancyGrid::kOccupied) {
        // Surface cells (touching free space) may be shaved off.
        bool surface = false;
        for (int dy = -1; dy <= 1 && !surface; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (map.is_free(ix + dx, iy + dy)) {
              surface = true;
              break;
            }
          }
        }
        if (surface && rng.uniform() <
                           std::clamp(params.erode_prob - bias, 0.0, 1.0)) {
          out.at(ix, iy) = OccupancyGrid::kUnknown;
        }
      } else if (v == OccupancyGrid::kFree) {
        // Free cells hugging a wall may grow a spurious wall cell.
        bool touches_wall = false;
        for (int dy = -1; dy <= 1 && !touches_wall; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (map.is_occupied(ix + dx, iy + dy)) {
              touches_wall = true;
              break;
            }
          }
        }
        if (touches_wall &&
            rng.uniform() <
                std::clamp(params.dilate_prob + bias, 0.0, 1.0)) {
          out.at(ix, iy) = OccupancyGrid::kOccupied;
        }
      }
    }
  }
  return out;
}

}  // namespace srl
