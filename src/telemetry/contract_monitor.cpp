#include "telemetry/contract_monitor.hpp"

namespace srl::telemetry {

ContractMonitor::ContractMonitor(MetricsRegistry& registry)
    : total_{&registry.counter("contracts.violations")},
      expects_{&registry.counter("contracts.expects")},
      ensures_{&registry.counter("contracts.ensures")},
      invariant_{&registry.counter("contracts.invariant")} {
  contracts::set_observer(&ContractMonitor::observe, this);
}

ContractMonitor::~ContractMonitor() { contracts::set_observer(nullptr, nullptr); }

void ContractMonitor::observe(const contracts::Violation& v, void* self) {
  auto* monitor = static_cast<ContractMonitor*>(self);
  monitor->total_->add();
  switch (v.kind) {
    case contracts::Kind::kExpects:
      monitor->expects_->add();
      break;
    case contracts::Kind::kEnsures:
      monitor->ensures_->add();
      break;
    case contracts::Kind::kInvariant:
      monitor->invariant_->add();
      break;
  }
}

}  // namespace srl::telemetry
