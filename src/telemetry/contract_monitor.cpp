#include "telemetry/contract_monitor.hpp"

namespace srl::telemetry {

ContractMonitor::ContractMonitor(MetricsRegistry& registry)
    : total_{&registry.counter("contracts.violations")},
      expects_{&registry.counter("contracts.expects")},
      ensures_{&registry.counter("contracts.ensures")},
      invariant_{&registry.counter("contracts.invariant")} {
  contracts::set_observer(&ContractMonitor::observe, this);
}

ContractMonitor::~ContractMonitor() { contracts::set_observer(nullptr, nullptr); }

void ContractMonitor::observe(const contracts::Violation& v, void* self) {
  auto* monitor = static_cast<ContractMonitor*>(self);
  monitor->total_->add();
  switch (v.kind) {
    case contracts::Kind::kExpects:
      monitor->expects_->add();
      break;
    case contracts::Kind::kEnsures:
      monitor->ensures_->add();
      break;
    case contracts::Kind::kInvariant:
      monitor->invariant_->add();
      break;
  }
  if (monitor->events_ != nullptr) {
    json::Value data = json::Value::object();
    data.set("kind", json::Value::string(contracts::to_string(v.kind)));
    data.set("condition", json::Value::string(v.condition));
    if (v.message[0] != '\0') {
      data.set("message", json::Value::string(v.message));
    }
    data.set("file", json::Value::string(v.file));
    data.set("line", json::Value::number(v.line));
    monitor->events_->emit(0.0, EventSeverity::kCritical,
                           EventCategory::kContract, "contract.violation",
                           std::move(data));
  }
}

}  // namespace srl::telemetry
