#pragma once

/// \file metrics.hpp
/// \brief Named-metric registry: lock-free counters, gauges, and fixed-bucket
/// latency histograms with percentile readout.
///
/// This is the instrumentation layer behind the paper's observability claims
/// (the 1.25 ms sensor-update latency and the Table-I CPU-load column): hot
/// paths record into pre-resolved `Histogram*` / `Counter*` handles with
/// relaxed atomics only — no locks, no allocation, no string hashing — while
/// readers take consistent-enough snapshots for tables and CSV export.
/// Components accept a nullable `MetricsRegistry*`; a null registry
/// short-circuits every record call to a predictable branch.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace srl::telemetry {

/// Monotonic event counter (queries served, resamples triggered, ...).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value-wins instantaneous metric (ESS, cloud size, entropy, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramOptions {
  /// Geometric bucket grid: `buckets_per_decade` log-spaced buckets per
  /// factor of 10 between `min_value` and `max_value`. Values below/above
  /// clamp into the first/last bucket (exact min/max are tracked separately).
  /// Defaults cover 100 ns .. 10 s when recording milliseconds.
  double min_value = 1e-4;
  double max_value = 1e4;
  int buckets_per_decade = 24;
};

/// Fixed-bucket latency histogram. `record` is wait-free (one relaxed
/// fetch_add per bucket plus CAS min/max); percentile readout interpolates
/// geometrically inside the hit bucket, so its relative error is bounded by
/// the bucket width (~10%/decade at the default 24 buckets per decade).
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  void record(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double min() const;  ///< exact observed minimum (0 when empty)
  double max() const;  ///< exact observed maximum (0 when empty)

  /// q in [0, 1]; returns 0 when empty. Result is clamped to [min, max].
  double percentile(double q) const;

  struct Snapshot {
    std::uint64_t count{0};
    double sum{0.0};
    double mean{0.0};
    double min{0.0};
    double max{0.0};
    double p50{0.0};
    double p90{0.0};
    double p95{0.0};
    double p99{0.0};
  };
  Snapshot snapshot() const;

  void reset();

  int bucket_count() const { return static_cast<int>(counts_.size()); }
  /// Exposed for tests: which bucket a value lands in.
  int bucket_index(double value) const;
  /// Lower edge of bucket `i` (bucket 0 starts at 0).
  double bucket_lower(int i) const;
  double bucket_upper(int i) const;

 private:
  HistogramOptions options_;
  double log_min_;
  double inv_log_step_;
  double log_step_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Owner and name-resolver for all metrics of one run. Creation (first
/// access by name) takes a mutex; returned references stay valid for the
/// registry's lifetime, so hot paths resolve once and record through the
/// handle. All three families share one namespace per kind.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, HistogramOptions options = {});

  /// Lookup without creation; nullptr when the name was never registered.
  const Histogram* find_histogram(const std::string& name) const;
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;

  /// One row per metric, sorted by (kind, name). Counter rows fill `count`,
  /// gauge rows fill `value`, histogram rows fill everything.
  struct Row {
    std::string name;
    std::string kind;  ///< "counter" | "gauge" | "histogram"
    std::uint64_t count{0};
    double value{0.0};  ///< counter value / gauge value / histogram mean
    Histogram::Snapshot hist{};
  };
  std::vector<Row> rows() const;

  /// CSV dump (name,kind,count,value,mean,min,max,p50,p90,p95,p99).
  bool write_csv(const std::string& path) const;

  /// Histogram names in registration-independent (sorted) order.
  std::vector<std::string> histogram_names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace srl::telemetry
