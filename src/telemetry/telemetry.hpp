#pragma once

/// \file telemetry.hpp
/// \brief Umbrella header and the `Sink` handle threaded through the system.
///
/// Instrumented components (`ParticleFilter`, `SynPf`, `CartoLocalizer`,
/// the range backends, `ExperimentRunner`, `SensorTrace::replay`) accept a
/// `Sink` — a bundle of nullable pointers. Any side may be absent: a null
/// metrics registry skips all counter/gauge/histogram records, a null trace
/// buffer makes every `ScopedSpan` a no-op, a null event log skips journal
/// emission, a null flight recorder skips black-box snapshots. The
/// default-constructed Sink is the zero-cost configuration (one predictable
/// branch per record site).

#include "telemetry/contract_monitor.hpp"
#include "telemetry/events.hpp"
#include "telemetry/filter_health.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace_buffer.hpp"

#include "common/timer.hpp"

namespace srl::telemetry {

/// Non-owning telemetry destination. Cheap to copy; all pointers nullable.
struct Sink {
  MetricsRegistry* metrics{nullptr};
  TraceBuffer* trace{nullptr};
  EventLog* events{nullptr};
  FlightRecorder* recorder{nullptr};

  bool enabled() const {
    return metrics != nullptr || trace != nullptr || events != nullptr ||
           recorder != nullptr;
  }
};

/// Owning bundle for examples, benches and tests: registry + trace buffer +
/// event journal with a ready-made Sink over them. The flight recorder is
/// per-run state, so harnesses attach their own (`Sink::recorder`).
struct Telemetry {
  MetricsRegistry metrics;
  TraceBuffer trace;
  EventLog events;

  Sink sink() {
    // Surface silent overflow in the registry (idempotent to re-wire).
    trace.set_dropped_counter(&metrics.counter("telemetry.dropped_spans"));
    events.set_dropped_counter(&metrics.counter("telemetry.dropped_events"));
    return Sink{&metrics, &trace, &events, nullptr};
  }
};

/// Stage stopwatch that records into a histogram on `stop()` — and does
/// nothing at all (not even a clock read) when the histogram is null.
class StageTimer {
 public:
  explicit StageTimer(Histogram* histogram) : histogram_{histogram} {
    if (histogram_ != nullptr) watch_.restart();
  }

  /// Record elapsed milliseconds; idempotent via re-arm on restart only.
  void stop() {
    if (histogram_ != nullptr) {
      histogram_->record(watch_.elapsed_ms());
      histogram_ = nullptr;
    }
  }

 private:
  Histogram* histogram_;
  Stopwatch watch_;
};

}  // namespace srl::telemetry
