#pragma once

/// \file flight_recorder.hpp
/// \brief The black box: a deterministic ring of compact per-tick filter
/// snapshots, dumped (with the event timeline and run provenance) when a
/// run goes wrong.
///
/// The recorder answers the question aggregate metrics cannot: *what did
/// the filter see in the seconds before divergence?* Every scan tick the
/// harness records a `TickSnapshot` — pose estimate, truth error, ESS and
/// entropy, detector health/latch states, active fault envelope level, and
/// a top-K particle digest — into a bounded ring. On a trigger (divergence
/// episode opening, contract violation, crash) the harness dumps a
/// self-contained black-box artifact: a JSON document (`srl.blackbox/1`)
/// carrying provenance + a rebuild recipe, the serialized sim RNG stream
/// state, the snapshot window, the full event timeline, and a running
/// FNV-1a hash over the raw bits of every recorded estimate — plus a
/// binary `SensorTrace` sidecar (same stem, `.srlt`) with the clean sensor
/// stream, so `tools/postmortem --replay` can re-drive the captured window
/// through a freshly rebuilt localizer stack and reproduce the episode
/// *bitwise* (same estimate-trajectory hash, at any thread count).
///
/// Determinism: recording reads serial filter state only, draws no RNG,
/// and hashes values that are already thread-count invariant — so an
/// attached recorder never perturbs estimates and a detached one
/// (`Sink::recorder == nullptr`) is a bitwise no-op.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "telemetry/events.hpp"

namespace srl::telemetry {

inline constexpr const char* kBlackboxSchema = "srl.blackbox/1";

/// One scan tick's worth of filter state. Negative values mean "signal not
/// available for this stack" (e.g. no particle cloud, no supervisor).
struct TickSnapshot {
  std::uint64_t tick{0};
  double t{0.0};
  double est_x{0.0};
  double est_y{0.0};
  double est_theta{0.0};
  double truth_err_m{-1.0};     ///< |estimate - ground truth|, when known
  double ess_fraction{-1.0};    ///< ESS / particle count
  double weight_entropy{-1.0};
  int health_state{-1};         ///< recovery::HealthState as int
  int latch_mask{-1};           ///< detector latches: ess|align|jump|disagree
  double alignment{-1.0};       ///< supervisor probe score
  double injection_prob{-1.0};  ///< AMCL w_fast/w_slow injection pressure
  double fault_level{-1.0};     ///< max active fault envelope at t
  /// Top-K particles by weight, flattened [x, y, theta, weight] * K.
  std::vector<double> digest;
};

json::Value snapshot_to_json(const TickSnapshot& snap);

struct FlightRecorderConfig {
  std::size_t window = 256;  ///< snapshot ring capacity (most recent kept)
  std::size_t top_k = 5;     ///< particle-digest size (probe hint)
  std::string dump_dir = "blackbox";
  std::string label = "run";  ///< dump filename stem
  int max_dumps = 4;          ///< per-run dump budget (first triggers win)
};

class FlightRecorder {
 public:
  /// `events` (nullable, not owned) is snapshotted into every dump.
  explicit FlightRecorder(FlightRecorderConfig config = {},
                          EventLog* events = nullptr);

  /// Harness-installed enrichment hook: fills the stack-specific snapshot
  /// fields (ESS, latches, digest, fault level) from captured filter /
  /// supervisor / pipeline pointers. Must be a pure observer.
  using TickProbe = std::function<void(TickSnapshot&)>;
  void set_tick_probe(TickProbe probe) { probe_ = std::move(probe); }

  /// Run provenance + rebuild recipe, serialized verbatim into every dump.
  void set_provenance(json::Value provenance) {
    provenance_ = std::move(provenance);
  }

  /// Record one tick: apply the probe, fold the estimate into the running
  /// trajectory hash, push into the ring.
  void record_tick(TickSnapshot snap);

  std::uint64_t ticks() const { return ticks_; }
  /// FNV-1a over the raw double bits of every recorded (x, y, theta).
  std::uint64_t estimate_hash() const { return hash_; }
  const FlightRecorderConfig& config() const { return config_; }
  /// Snapshot window in chronological order.
  std::vector<TickSnapshot> window() const;

  bool can_dump() const { return dumps_done_ < config_.max_dumps; }
  /// "<dump_dir>/<label>-<reason>-<n>.json" for the next dump ("" when the
  /// budget is exhausted). The trace sidecar replaces .json with .srlt.
  std::string next_dump_path(const std::string& reason) const;
  static std::string trace_sidecar_path(const std::string& json_path);

  /// Write the black box to `path` (creating dump_dir). `extra` members are
  /// spliced into the document root — the harness supplies what only it
  /// knows (trace sidecar name, start pose, sim RNG state, seeds).
  bool dump(const std::string& path, const std::string& reason, double t,
            const json::Value& extra);

  int dumps() const { return dumps_done_; }
  const std::vector<std::string>& dump_paths() const { return dump_paths_; }

  void clear();

 private:
  FlightRecorderConfig config_;
  EventLog* events_;
  TickProbe probe_{};
  json::Value provenance_{json::Value::object()};

  std::vector<TickSnapshot> ring_;
  std::size_t ring_next_{0};
  std::uint64_t ticks_{0};
  std::uint64_t hash_;
  int dumps_done_{0};
  std::vector<std::string> dump_paths_;
};

}  // namespace srl::telemetry
