#include "telemetry/filter_health.hpp"

#include <cmath>

#include "common/angles.hpp"

namespace srl::telemetry {

double effective_sample_size(std::span<const double> weights) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double w : weights) {
    sum += w;
    sum_sq += w * w;
  }
  return sum_sq > 0.0 ? sum * sum / sum_sq : 0.0;
}

double weight_entropy(std::span<const double> weights) {
  double sum = 0.0;
  for (const double w : weights) sum += w;
  if (sum <= 0.0) return 0.0;
  double h = 0.0;
  for (const double w : weights) {
    if (w <= 0.0) continue;
    const double p = w / sum;
    h -= p * std::log(p);
  }
  return h;
}

double max_weight_share(std::span<const double> weights) {
  double sum = 0.0;
  double max_w = 0.0;
  for (const double w : weights) {
    sum += w;
    max_w = std::max(max_w, w);
  }
  return sum > 0.0 ? max_w / sum : 0.0;
}

bool PoseJumpDetector::update(const Pose2& predicted, const Pose2& corrected,
                              FilterHealth& health) {
  const double dx = corrected.x - predicted.x;
  const double dy = corrected.y - predicted.y;
  health.pose_jump_m = std::sqrt(dx * dx + dy * dy);
  health.pose_jump_rad =
      std::abs(angle_dist(corrected.theta, predicted.theta));
  health.pose_jump_alarm = health.pose_jump_m > xy_threshold_ ||
                           health.pose_jump_rad > theta_threshold_;
  if (health.pose_jump_alarm) ++alarms_;
  return health.pose_jump_alarm;
}

}  // namespace srl::telemetry
