#pragma once

/// \file filter_health.hpp
/// \brief Particle-filter health diagnostics: effective sample size, weight
/// entropy, max-weight share, and a pose-jump detector.
///
/// These are the signals behind the paper's degradation analysis: a healthy
/// MCL posterior has ESS near N and entropy near log N; weight collapse
/// (ESS -> 1, one particle holding all the mass) precedes the scan-alignment
/// drops of Table I under low-quality odometry, and a pose jump larger than
/// the odometry-feasible motion marks the estimate snapping between modes.
/// The struct is sampled once per measurement update when a
/// `MetricsRegistry` is attached — it is an observability product, not part
/// of the filter's control flow.

#include <span>

#include "common/types.hpp"

namespace srl::telemetry {

/// Kish effective sample size 1 / sum(w_i^2) of a weight vector. Weights
/// need not be normalized; all-zero weights yield 0.
double effective_sample_size(std::span<const double> weights);

/// Shannon entropy -sum(w log w) in nats of the normalized weights.
/// Uniform weights give log(N); a degenerate vector gives 0.
double weight_entropy(std::span<const double> weights);

/// Largest normalized weight (1/N when uniform, 1.0 when degenerate).
double max_weight_share(std::span<const double> weights);

/// One health sample, taken after a measurement update.
struct FilterHealth {
  int n_particles{0};
  double ess{0.0};
  double ess_fraction{0.0};        ///< ess / n_particles
  double weight_entropy{0.0};      ///< nats
  double normalized_entropy{0.0};  ///< entropy / log(n), 1 = uniform
  double max_weight_share{0.0};
  long resample_count{0};          ///< cumulative resampling events
  double pose_jump_m{0.0};         ///< |correction| applied by this update
  double pose_jump_rad{0.0};
  bool pose_jump_alarm{false};
};

/// Flags measurement-update corrections larger than the configured
/// thresholds — the estimate teleporting rather than tracking. The inputs
/// are the odometry-propagated estimate (before `correct`) and the posterior
/// estimate (after), so odometry-consistent motion never alarms.
class PoseJumpDetector {
 public:
  explicit PoseJumpDetector(double xy_threshold_m = 0.5,
                            double theta_threshold_rad = 0.35)
      : xy_threshold_{xy_threshold_m}, theta_threshold_{theta_threshold_rad} {}

  /// Fills jump magnitudes into `health` and returns whether this update
  /// alarmed. Alarms are also counted cumulatively.
  bool update(const Pose2& predicted, const Pose2& corrected,
              FilterHealth& health);

  long alarm_count() const { return alarms_; }
  double xy_threshold() const { return xy_threshold_; }
  double theta_threshold() const { return theta_threshold_; }

 private:
  double xy_threshold_;
  double theta_threshold_;
  long alarms_{0};
};

}  // namespace srl::telemetry
