#include "telemetry/trace_buffer.hpp"

#include <atomic>
#include <fstream>

#include "common/csv.hpp"
#include "telemetry/metrics.hpp"

namespace srl::telemetry {

namespace {

/// Per-thread span nesting depth. Only ScopedSpans with a non-null buffer
/// contribute, so disabled tracing leaves it untouched.
thread_local std::uint32_t t_span_depth = 0;

}  // namespace

TraceBuffer::TraceBuffer(std::size_t capacity)
    : epoch_{std::chrono::steady_clock::now()},
      capacity_{std::max<std::size_t>(capacity, 1)} {}

double TraceBuffer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceBuffer::add(const char* name, double ts_us, double dur_us,
                      std::uint32_t tid, std::uint32_t depth) {
  std::lock_guard lock{mutex_};
  if (events_.size() >= capacity_) {
    ++dropped_;
    if (dropped_counter_ != nullptr) dropped_counter_->add();
    return;
  }
  events_.emplace_back(name, ts_us, dur_us, tid, depth);
}

void TraceBuffer::set_dropped_counter(Counter* counter) {
  std::lock_guard lock{mutex_};
  dropped_counter_ = counter;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::lock_guard lock{mutex_};
  return events_;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard lock{mutex_};
  return events_.size();
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard lock{mutex_};
  return dropped_;
}

void TraceBuffer::clear() {
  std::lock_guard lock{mutex_};
  events_.clear();
  dropped_ = 0;
}

std::uint32_t TraceBuffer::this_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

bool TraceBuffer::write_chrome_trace(const std::string& path) const {
  std::ofstream out{path};
  if (!out) return false;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Span names are code identifiers (no quotes/backslashes), so no JSON
  // string escaping is needed beyond trusting them; keep the output dumb.
  for (const TraceEvent& e : events()) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << e.name << "\",\"cat\":\"srl\",\"ph\":\"X\""
        << ",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us
        << ",\"pid\":0,\"tid\":" << e.tid << ",\"args\":{\"depth\":" << e.depth
        << "}}";
  }
  out << "],\"otherData\":{\"dropped_spans\":" << dropped() << "}}\n";
  return static_cast<bool>(out);
}

bool TraceBuffer::write_csv(const std::string& path) const {
  CsvWriter csv{path};
  if (!csv.ok()) return false;
  csv.write_header({"name", "ts_us", "dur_us", "tid", "depth"});
  for (const TraceEvent& e : events()) {
    csv.write_row(std::vector<std::string>{
        e.name, std::to_string(e.ts_us), std::to_string(e.dur_us),
        std::to_string(e.tid), std::to_string(e.depth)});
  }
  return csv.ok();
}

ScopedSpan::ScopedSpan(TraceBuffer* buffer, const char* name)
    : buffer_{buffer}, name_{name} {
  if (buffer_ == nullptr) return;
  depth_ = t_span_depth++;
  start_us_ = buffer_->now_us();
}

ScopedSpan::~ScopedSpan() {
  if (buffer_ == nullptr) return;
  const double end_us = buffer_->now_us();
  --t_span_depth;
  buffer_->add(name_, start_us_, end_us - start_us_,
               TraceBuffer::this_thread_id(), depth_);
}

}  // namespace srl::telemetry
