#include "telemetry/events.hpp"

#include <algorithm>
#include <fstream>

namespace srl::telemetry {

const char* to_string(EventSeverity severity) {
  switch (severity) {
    case EventSeverity::kDebug: return "debug";
    case EventSeverity::kInfo: return "info";
    case EventSeverity::kWarn: return "warn";
    case EventSeverity::kError: return "error";
    case EventSeverity::kCritical: return "critical";
  }
  return "unknown";
}

const char* to_string(EventCategory category) {
  switch (category) {
    case EventCategory::kFilter: return "filter";
    case EventCategory::kFault: return "fault";
    case EventCategory::kRecovery: return "recovery";
    case EventCategory::kExperiment: return "experiment";
    case EventCategory::kContract: return "contract";
  }
  return "unknown";
}

namespace {

std::optional<EventSeverity> severity_from_string(const std::string& s) {
  for (const EventSeverity sev :
       {EventSeverity::kDebug, EventSeverity::kInfo, EventSeverity::kWarn,
        EventSeverity::kError, EventSeverity::kCritical}) {
    if (s == to_string(sev)) return sev;
  }
  return std::nullopt;
}

std::optional<EventCategory> category_from_string(const std::string& s) {
  for (const EventCategory cat :
       {EventCategory::kFilter, EventCategory::kFault, EventCategory::kRecovery,
        EventCategory::kExperiment, EventCategory::kContract}) {
    if (s == to_string(cat)) return cat;
  }
  return std::nullopt;
}

}  // namespace

json::Value event_to_json(const Event& event) {
  json::Value v = json::Value::object();
  v.set("seq", json::Value::number(static_cast<double>(event.seq)));
  v.set("t", json::Value::number(event.t));
  v.set("severity", json::Value::string(to_string(event.severity)));
  v.set("category", json::Value::string(to_string(event.category)));
  v.set("code", json::Value::string(event.code));
  if (event.data.is_object() && event.data.size() > 0) {
    v.set("data", event.data);
  }
  return v;
}

std::optional<Event> event_from_json(const json::Value& v) {
  if (!v.is_object()) return std::nullopt;
  const json::Value* code = v.find("code");
  const json::Value* sev = v.find("severity");
  const json::Value* cat = v.find("category");
  if (code == nullptr || !code->is_string() || sev == nullptr ||
      cat == nullptr) {
    return std::nullopt;
  }
  const std::optional<EventSeverity> severity =
      severity_from_string(sev->as_string());
  const std::optional<EventCategory> category =
      category_from_string(cat->as_string());
  if (!severity.has_value() || !category.has_value()) return std::nullopt;

  Event event;
  if (const json::Value* seq = v.find("seq"); seq != nullptr) {
    event.seq = static_cast<std::uint64_t>(seq->as_double());
  }
  if (const json::Value* t = v.find("t"); t != nullptr) {
    event.t = t->as_double();
  }
  event.severity = *severity;
  event.category = *category;
  event.code = code->as_string();
  if (const json::Value* data = v.find("data");
      data != nullptr && data->is_object()) {
    event.data = *data;
  } else {
    event.data = json::Value::object();
  }
  return event;
}

EventLog::EventLog(std::size_t capacity)
    : capacity_{std::max<std::size_t>(capacity, 1)} {}

void EventLog::emit(double t, EventSeverity severity, EventCategory category,
                    std::string code, json::Value data) {
  std::lock_guard lock{mutex_};
  ++by_severity_[static_cast<std::size_t>(severity)];
  const std::uint64_t seq = next_seq_++;
  if (events_.size() >= capacity_) {
    ++dropped_;
    if (dropped_counter_ != nullptr) dropped_counter_->add();
    return;
  }
  Event event;
  event.seq = seq;
  event.t = t;
  event.severity = severity;
  event.category = category;
  event.code = std::move(code);
  event.data = std::move(data);
  events_.push_back(std::move(event));
}

std::vector<Event> EventLog::events() const {
  std::lock_guard lock{mutex_};
  return events_;
}

std::size_t EventLog::size() const {
  std::lock_guard lock{mutex_};
  return events_.size();
}

std::uint64_t EventLog::total() const {
  std::lock_guard lock{mutex_};
  return next_seq_;
}

std::uint64_t EventLog::dropped() const {
  std::lock_guard lock{mutex_};
  return dropped_;
}

std::uint64_t EventLog::count(EventSeverity severity) const {
  std::lock_guard lock{mutex_};
  return by_severity_[static_cast<std::size_t>(severity)];
}

void EventLog::clear() {
  std::lock_guard lock{mutex_};
  events_.clear();
  next_seq_ = 0;
  dropped_ = 0;
  by_severity_.fill(0);
}

void EventLog::set_dropped_counter(Counter* counter) {
  std::lock_guard lock{mutex_};
  dropped_counter_ = counter;
}

bool EventLog::write_ndjson(const std::string& path) const {
  std::ofstream out{path};
  if (!out) return false;
  for (const Event& event : events()) {
    out << event_to_json(event).dump(0) << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<std::vector<Event>> EventLog::load_ndjson(
    const std::string& path) {
  const std::optional<std::vector<json::Value>> docs = json::load_ndjson(path);
  if (!docs.has_value()) return std::nullopt;
  std::vector<Event> events;
  events.reserve(docs->size());
  for (const json::Value& doc : *docs) {
    std::optional<Event> event = event_from_json(doc);
    if (!event.has_value()) return std::nullopt;
    events.push_back(std::move(*event));
  }
  return events;
}

}  // namespace srl::telemetry
