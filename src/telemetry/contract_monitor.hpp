#pragma once

/// \file contract_monitor.hpp
/// \brief Bridge from the contract subsystem (common/contracts.hpp) into the
/// telemetry sink: every contract violation is counted in a
/// `MetricsRegistry` before the violation handler runs.
///
/// The `checked` CI job replays a full lap with a monitor attached and
/// requires `contracts.violations == 0`; soak runs can pair the monitor with
/// a log-and-continue handler to measure violation rates without dying on
/// the first one.

#include "common/contracts.hpp"
#include "telemetry/events.hpp"
#include "telemetry/metrics.hpp"

namespace srl::telemetry {

/// RAII contract observer. While alive, violations increment
/// `contracts.violations` plus a per-kind counter
/// (`contracts.expects` / `contracts.ensures` / `contracts.invariant`).
/// Only one monitor can be installed at a time (the contract subsystem has a
/// single observer slot); the last constructed wins and uninstalls on
/// destruction.
class ContractMonitor {
 public:
  explicit ContractMonitor(MetricsRegistry& registry);
  ~ContractMonitor();

  ContractMonitor(const ContractMonitor&) = delete;
  ContractMonitor& operator=(const ContractMonitor&) = delete;

  /// Also journal each violation as a critical `contract.violation` event
  /// (condition, kind, source location). The harness polls the log's
  /// critical count to trigger a black-box dump. Nullable to detach.
  void attach_events(EventLog* events) { events_ = events; }

  /// Total violations observed by *this* monitor instance.
  std::uint64_t violations() const { return total_->value(); }

 private:
  static void observe(const contracts::Violation& v, void* self);

  Counter* total_;
  Counter* expects_;
  Counter* ensures_;
  Counter* invariant_;
  EventLog* events_{nullptr};
};

}  // namespace srl::telemetry
