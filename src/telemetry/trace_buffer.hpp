#pragma once

/// \file trace_buffer.hpp
/// \brief RAII span tracing with Chrome-trace export.
///
/// `ScopedSpan` records one nested begin/end interval into a `TraceBuffer`;
/// the buffer serializes to the Chrome `chrome://tracing` / Perfetto JSON
/// format (`"ph":"X"` complete events) and to CSV. Span names must be string
/// literals (or otherwise outlive the buffer): only the pointer is stored so
/// the hot path never allocates. A null buffer makes `ScopedSpan` a no-op.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace srl::telemetry {

class Counter;

struct TraceEvent {
  const char* name;     ///< string literal; not owned
  double ts_us;         ///< start, microseconds since the buffer epoch
  double dur_us;        ///< duration, microseconds
  std::uint32_t tid;    ///< dense per-process thread id
  std::uint32_t depth;  ///< nesting depth on that thread (0 = top level)
};

/// Bounded event store. Appends take a mutex (span *ends* are rare compared
/// to metric records: one per stage, not one per particle); once `capacity`
/// events are held further spans are counted in `dropped()` instead of
/// growing without bound.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 1 << 20);

  /// Microseconds since this buffer was constructed (the trace epoch).
  double now_us() const;

  /// Record one completed span. Used by ScopedSpan; callable directly for
  /// events timed by other means.
  void add(const char* name, double ts_us, double dur_us, std::uint32_t tid,
           std::uint32_t depth);

  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  std::uint64_t dropped() const;
  void clear();

  /// Mirror span overflow into a registry counter
  /// (telemetry.dropped_spans) so silent truncation shows up in metrics
  /// tables, not just in this buffer's own accessor.
  void set_dropped_counter(Counter* counter);

  /// Chrome trace JSON: {"traceEvents":[...],"displayTimeUnit":"ms"} plus
  /// an "otherData" footer carrying the dropped-span count.
  /// Loadable in chrome://tracing and ui.perfetto.dev.
  bool write_chrome_trace(const std::string& path) const;
  /// CSV: name,ts_us,dur_us,tid,depth.
  bool write_csv(const std::string& path) const;

  /// Dense id of the calling thread (assigned on first use).
  static std::uint32_t this_thread_id();

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_{0};
  Counter* dropped_counter_{nullptr};
};

/// RAII span: records [construction, destruction) into `buffer` under
/// `name`. Nesting depth is tracked per thread so exporters and tests can
/// reconstruct the call tree without relying on timestamps alone.
class ScopedSpan {
 public:
  ScopedSpan(TraceBuffer* buffer, const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceBuffer* buffer_;
  const char* name_;
  double start_us_{0.0};
  std::uint32_t depth_{0};
};

}  // namespace srl::telemetry
