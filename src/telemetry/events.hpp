#pragma once

/// \file events.hpp
/// \brief Structured event journal — the discrete counterpart of the
/// continuous metrics/trace telemetry.
///
/// Metrics answer "how is the filter doing on average"; the journal answers
/// "what exactly happened, in what order, in the seconds before it went
/// wrong". Every instrumented layer emits severity/category-tagged events
/// at its own decision points (resamples, fault envelope edges, detector
/// transitions, recovery actions, kidnaps, crashes, contract violations),
/// and the `FlightRecorder` snapshots the journal into every black-box dump
/// so a failed run carries its own timeline.
///
/// Determinism contract (same as the rest of the telemetry layer): emitting
/// an event never draws RNG, never touches filter state, and happens only
/// on the serial sections of the update path — a null `EventLog*` in the
/// `Sink` is a bitwise no-op and an attached one is thread-count invariant.
///
/// The log is a bounded ring-less buffer: the first `capacity` events are
/// kept verbatim (a postmortem wants the *beginning* of the causal chain,
/// and runs are short), later ones are counted in `dropped()` — surfaced
/// through the `telemetry.dropped_events` registry counter like the trace
/// buffer's dropped spans. Serialization is NDJSON built on `common/json`.

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "telemetry/metrics.hpp"

namespace srl::telemetry {

enum class EventSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kCritical = 4,
};

enum class EventCategory : int {
  kFilter = 0,      ///< particle-filter internals (resample, injection)
  kFault = 1,       ///< fault-pipeline envelope edges
  kRecovery = 2,    ///< detector transitions + recovery-ladder actions
  kExperiment = 3,  ///< harness-level: kidnap, episode open/close, crash
  kContract = 4,    ///< contract violations (telemetry::ContractMonitor)
};

const char* to_string(EventSeverity severity);
const char* to_string(EventCategory category);

/// One journal entry. `seq` is the emission index (including later-dropped
/// events, so gaps are visible), `t` is sim/stream time in seconds — never
/// wall clock, so two deterministic runs journal identical timelines.
struct Event {
  std::uint64_t seq{0};
  double t{0.0};
  EventSeverity severity{EventSeverity::kInfo};
  EventCategory category{EventCategory::kExperiment};
  std::string code;   ///< dotted identifier, e.g. "recovery.to_diverged"
  json::Value data;   ///< structured payload (object; may be empty)
};

json::Value event_to_json(const Event& event);
std::optional<Event> event_from_json(const json::Value& v);

class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 4096);

  /// Append one event (thread-safe). Severity tallies count every emission;
  /// the stored buffer stops growing at `capacity` and overflow goes to
  /// `dropped()` (and the registry counter when attached).
  void emit(double t, EventSeverity severity, EventCategory category,
            std::string code, json::Value data = json::Value::object());

  std::vector<Event> events() const;  ///< snapshot copy, emission order
  std::size_t size() const;
  std::uint64_t total() const;    ///< all emissions, kept + dropped
  std::uint64_t dropped() const;
  /// Emissions at exactly `severity` (kept + dropped).
  std::uint64_t count(EventSeverity severity) const;
  std::uint64_t critical_count() const { return count(EventSeverity::kCritical); }
  void clear();

  /// Mirror overflow into a registry counter (telemetry.dropped_events).
  void set_dropped_counter(Counter* counter);

  /// Append every held event to an NDJSON file (one line per event).
  bool write_ndjson(const std::string& path) const;
  /// Strict NDJSON load (any malformed line fails the whole read).
  static std::optional<std::vector<Event>> load_ndjson(const std::string& path);

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::uint64_t next_seq_{0};
  std::uint64_t dropped_{0};
  std::array<std::uint64_t, 5> by_severity_{};
  std::vector<Event> events_;
  Counter* dropped_counter_{nullptr};
};

}  // namespace srl::telemetry
