#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/csv.hpp"

namespace srl::telemetry {

namespace {

/// CAS-min/max for atomic doubles (C++20 atomic<double> has no fetch_min).
void atomic_min(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value < cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value > cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(HistogramOptions options)
    : options_{options},
      min_{std::numeric_limits<double>::infinity()},
      max_{-std::numeric_limits<double>::infinity()} {
  options_.min_value = std::max(options_.min_value, 1e-12);
  options_.max_value = std::max(options_.max_value, options_.min_value * 10.0);
  options_.buckets_per_decade = std::max(options_.buckets_per_decade, 1);
  log_min_ = std::log10(options_.min_value);
  log_step_ = 1.0 / static_cast<double>(options_.buckets_per_decade);
  inv_log_step_ = static_cast<double>(options_.buckets_per_decade);
  const double decades = std::log10(options_.max_value) - log_min_;
  // Bucket 0 is the underflow bucket [0, min_value); the last bucket holds
  // everything >= max_value.
  const int geometric =
      static_cast<int>(std::ceil(decades * inv_log_step_ - 1e-9));
  counts_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(geometric + 2));
}

int Histogram::bucket_index(double value) const {
  if (!(value >= options_.min_value)) return 0;  // also catches NaN
  const int idx =
      1 + static_cast<int>((std::log10(value) - log_min_) * inv_log_step_);
  return std::min(idx, static_cast<int>(counts_.size()) - 1);
}

double Histogram::bucket_lower(int i) const {
  if (i <= 0) return 0.0;
  return std::pow(10.0, log_min_ + static_cast<double>(i - 1) * log_step_);
}

double Histogram::bucket_upper(int i) const {
  if (i < 0) return 0.0;
  if (i + 1 >= static_cast<int>(counts_.size())) {
    const double hi = max_.load(std::memory_order_relaxed);
    return std::isfinite(hi) ? std::max(hi, options_.max_value)
                             : options_.max_value;
  }
  return std::pow(10.0, log_min_ + static_cast<double>(i) * log_step_);
}

void Histogram::record(double value) {
  if (!std::isfinite(value)) return;
  value = std::max(value, 0.0);
  counts_[static_cast<std::size_t>(bucket_index(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::percentile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th order statistic (1-based, nearest-rank with ceil).
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (int i = 0; i < static_cast<int>(counts_.size()); ++i) {
    const std::uint64_t c =
        counts_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (seen + c >= rank) {
      // Geometric interpolation inside the bucket by the fraction of the
      // bucket's own population below the target rank.
      const double frac = (static_cast<double>(rank - seen) - 0.5) /
                          static_cast<double>(c);
      const double lo = std::max(bucket_lower(i), 1e-12);
      const double hi = std::max(bucket_upper(i), lo);
      const double value = lo * std::pow(hi / lo, std::clamp(frac, 0.0, 1.0));
      return std::clamp(value, min(), max());
    }
    seen += c;
  }
  return max();
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count();
  s.sum = sum();
  s.mean = mean();
  s.min = min();
  s.max = max();
  s.p50 = percentile(0.50);
  s.p90 = percentile(0.90);
  s.p95 = percentile(0.95);
  s.p99 = percentile(0.99);
  return s;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock{mutex_};
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock{mutex_};
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      HistogramOptions options) {
  std::lock_guard lock{mutex_};
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(options);
  return *slot;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  std::lock_guard lock{mutex_};
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  std::lock_guard lock{mutex_};
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second.get() : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  std::lock_guard lock{mutex_};
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second.get() : nullptr;
}

std::vector<MetricsRegistry::Row> MetricsRegistry::rows() const {
  std::lock_guard lock{mutex_};
  std::vector<Row> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    Row row;
    row.name = name;
    row.kind = "counter";
    row.count = c->value();
    row.value = static_cast<double>(c->value());
    out.push_back(std::move(row));
  }
  for (const auto& [name, g] : gauges_) {
    Row row;
    row.name = name;
    row.kind = "gauge";
    row.value = g->value();
    out.push_back(std::move(row));
  }
  for (const auto& [name, h] : histograms_) {
    Row row;
    row.name = name;
    row.kind = "histogram";
    row.hist = h->snapshot();
    row.count = row.hist.count;
    row.value = row.hist.mean;
    out.push_back(std::move(row));
  }
  return out;
}

bool MetricsRegistry::write_csv(const std::string& path) const {
  CsvWriter csv{path};
  if (!csv.ok()) return false;
  csv.write_header({"name", "kind", "count", "value", "mean", "min", "max",
                    "p50", "p90", "p95", "p99"});
  for (const Row& row : rows()) {
    csv.write_row(std::vector<std::string>{
        row.name, row.kind, std::to_string(row.count),
        std::to_string(row.value), std::to_string(row.hist.mean),
        std::to_string(row.hist.min), std::to_string(row.hist.max),
        std::to_string(row.hist.p50), std::to_string(row.hist.p90),
        std::to_string(row.hist.p95), std::to_string(row.hist.p99)});
  }
  return csv.ok();
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::lock_guard lock{mutex_};
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) names.push_back(name);
  return names;
}

}  // namespace srl::telemetry
