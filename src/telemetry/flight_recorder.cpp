#include "telemetry/flight_recorder.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace srl::telemetry {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a_double(std::uint64_t h, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    h ^= (bits >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

std::string hash_to_hex(std::uint64_t h) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, h);
  return buf;
}

}  // namespace

json::Value snapshot_to_json(const TickSnapshot& snap) {
  json::Value v = json::Value::object();
  v.set("tick", json::Value::number(static_cast<double>(snap.tick)));
  v.set("t", json::Value::number(snap.t));
  json::Value est = json::Value::array();
  est.push_back(json::Value::number(snap.est_x));
  est.push_back(json::Value::number(snap.est_y));
  est.push_back(json::Value::number(snap.est_theta));
  v.set("est", std::move(est));
  v.set("truth_err_m", json::Value::number(snap.truth_err_m));
  v.set("ess_fraction", json::Value::number(snap.ess_fraction));
  v.set("weight_entropy", json::Value::number(snap.weight_entropy));
  v.set("health_state", json::Value::number(snap.health_state));
  v.set("latch_mask", json::Value::number(snap.latch_mask));
  v.set("alignment", json::Value::number(snap.alignment));
  v.set("injection_prob", json::Value::number(snap.injection_prob));
  v.set("fault_level", json::Value::number(snap.fault_level));
  if (!snap.digest.empty()) {
    json::Value digest = json::Value::array();
    for (const double d : snap.digest) {
      digest.push_back(json::Value::number(d));
    }
    v.set("digest", std::move(digest));
  }
  return v;
}

FlightRecorder::FlightRecorder(FlightRecorderConfig config, EventLog* events)
    : config_{config}, events_{events}, hash_{kFnvOffset} {
  config_.window = std::max<std::size_t>(config_.window, 1);
  ring_.reserve(config_.window);
}

void FlightRecorder::record_tick(TickSnapshot snap) {
  if (probe_) probe_(snap);
  hash_ = fnv1a_double(hash_, snap.est_x);
  hash_ = fnv1a_double(hash_, snap.est_y);
  hash_ = fnv1a_double(hash_, snap.est_theta);
  ++ticks_;
  if (ring_.size() < config_.window) {
    ring_.push_back(std::move(snap));
  } else {
    ring_[ring_next_] = std::move(snap);
  }
  ring_next_ = (ring_next_ + 1) % config_.window;
}

std::vector<TickSnapshot> FlightRecorder::window() const {
  std::vector<TickSnapshot> out;
  out.reserve(ring_.size());
  if (ring_.size() < config_.window) {
    out = ring_;  // ring not yet wrapped: already chronological
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(ring_next_ + i) % config_.window]);
    }
  }
  return out;
}

std::string FlightRecorder::next_dump_path(const std::string& reason) const {
  if (!can_dump()) return {};
  return config_.dump_dir + "/" + config_.label + "-" + reason + "-" +
         std::to_string(dumps_done_) + ".json";
}

std::string FlightRecorder::trace_sidecar_path(const std::string& json_path) {
  const std::string suffix = ".json";
  std::string stem = json_path;
  if (stem.size() > suffix.size() &&
      stem.compare(stem.size() - suffix.size(), suffix.size(), suffix) == 0) {
    stem.resize(stem.size() - suffix.size());
  }
  return stem + ".srlt";
}

bool FlightRecorder::dump(const std::string& path, const std::string& reason,
                          double t, const json::Value& extra) {
  if (!can_dump()) return false;
  std::error_code ec;
  std::filesystem::create_directories(config_.dump_dir, ec);

  json::Value root = json::Value::object();
  root.set("schema", json::Value::string(kBlackboxSchema));
  root.set("reason", json::Value::string(reason));
  root.set("label", json::Value::string(config_.label));
  root.set("t", json::Value::number(t));
  root.set("ticks", json::Value::number(static_cast<double>(ticks_)));
  root.set("estimate_hash", json::Value::string(hash_to_hex(hash_)));
  root.set("provenance", provenance_);
  if (extra.is_object()) {
    for (const auto& [key, value] : extra.members()) {
      root.set(key, value);
    }
  }

  json::Value snapshots = json::Value::array();
  for (const TickSnapshot& snap : window()) {
    snapshots.push_back(snapshot_to_json(snap));
  }
  root.set("snapshots", std::move(snapshots));

  json::Value events = json::Value::array();
  if (events_ != nullptr) {
    for (const Event& event : events_->events()) {
      events.push_back(event_to_json(event));
    }
    root.set("events_total",
             json::Value::number(static_cast<double>(events_->total())));
    root.set("events_dropped",
             json::Value::number(static_cast<double>(events_->dropped())));
  }
  root.set("events", std::move(events));

  if (!root.save(path)) return false;
  ++dumps_done_;
  dump_paths_.push_back(path);
  return true;
}

void FlightRecorder::clear() {
  ring_.clear();
  ring_next_ = 0;
  ticks_ = 0;
  hash_ = kFnvOffset;
  dumps_done_ = 0;
  dump_paths_.clear();
}

}  // namespace srl::telemetry
