#pragma once

/// \file ackermann.hpp
/// \brief Ackermann (kinematic bicycle) geometry shared by the TUM motion
/// model and the vehicle simulator: wheelbase, steering limits, and the
/// speed-dependent feasible-curvature envelope that motivates the model.

#include <algorithm>
#include <cmath>

namespace srl {

/// Geometry and handling limits of the (1:10 scale) race car.
struct AckermannParams {
  double wheelbase = 0.33;       ///< m, F1TENTH standard chassis
  double max_steer = 0.40;       ///< rad, mechanical steering limit
  double max_lat_accel = 7.0;    ///< m/s^2, grip-limited lateral acceleration
  double max_speed = 8.0;        ///< m/s
};

/// Maximum feasible path curvature at longitudinal speed `v`:
/// the geometric limit tan(max_steer)/wheelbase at low speed, and the
/// grip limit a_lat / v^2 once centripetal acceleration binds. This envelope
/// is the physical fact behind the TUM motion model: at 7 m/s a race car
/// simply cannot yaw fast, so particle heading noise should not either.
inline double max_curvature(const AckermannParams& p, double v) {
  const double geometric = std::tan(p.max_steer) / p.wheelbase;
  if (std::abs(v) < 0.3) return geometric;  // grip limit meaningless at rest
  const double grip = p.max_lat_accel / (v * v);
  return std::min(geometric, grip);
}

/// Curvature commanded by a steering angle (kinematic bicycle).
inline double steer_to_curvature(const AckermannParams& p, double steer) {
  return std::tan(std::clamp(steer, -p.max_steer, p.max_steer)) / p.wheelbase;
}

/// Steering angle that yields a path curvature (inverse of the above).
inline double curvature_to_steer(const AckermannParams& p, double kappa) {
  return std::clamp(std::atan(kappa * p.wheelbase), -p.max_steer, p.max_steer);
}

}  // namespace srl
