#pragma once

/// \file tum_model.hpp
/// \brief Speed-adaptive Ackermann-constrained motion model after Stahl et
/// al., "ROS-based localization of a race vehicle at high-speed using LIDAR"
/// (E3S Web Conf. 95, 2019) — the model SynPF adopts.
///
/// Key idea: the heading (and hence lateral) uncertainty of a race car over
/// one odometry step is bounded by the *feasible curvature envelope*
/// kappa_max(v) = min(tan(delta_max)/L, a_lat/v^2). The diff-drive model's
/// heading noise (~ alpha2 * trans^2) ignores this and explodes with speed;
/// here the heading standard deviation is capped at
/// beta * kappa_max(v) * trans, so at 7 m/s on a straight the particle cloud
/// stays a tight, forward-stretched ellipse instead of a banana. At low
/// speed the cap is inactive and the model reduces to diff-drive behaviour
/// (cf. paper Fig. 1, left vs right).
///
/// Longitudinal noise is *not* capped — wheel slip corrupts the translation
/// magnitude, and the filter must keep enough longitudinal dispersion to
/// absorb it; this is exactly the robustness channel of the Table-I
/// experiment.

#include "motion/ackermann.hpp"
#include "motion/motion_model.hpp"

namespace srl {

struct TumModelParams {
  AckermannParams ackermann{};
  double alpha_trans = 0.18;        ///< trans noise per meter traveled
  double alpha_rot = 0.25;          ///< heading noise per rad turned
  double alpha_rot_trans = 0.08;    ///< uncapped heading noise per m (low v)
  double beta_curvature = 0.5;      ///< cap: fraction of kappa_max per meter
  double sigma_floor_xy = 0.012;    ///< m
  double sigma_floor_theta = 0.006; ///< rad
  /// Clamp the *mean* heading increment to the feasible-curvature envelope.
  /// Steering-derived wheel odometry reports the commanded curvature, which
  /// during understeer exceeds what the tires deliver; a real Ackermann car
  /// cannot have yawed faster than kappa_max(v) * trans, so the reported
  /// excess is discarded. This is the model's physical insight applied to
  /// the increment itself, not only to its dispersion.
  bool clamp_mean_heading = true;
  double envelope_margin = 1.15;    ///< slack factor on the clamp
};

class TumMotionModel final : public MotionModel {
 public:
  explicit TumMotionModel(const TumModelParams& params = {})
      : params_{params} {}

  Pose2 sample(const Pose2& pose, const OdometryDelta& odom,
               Rng& rng) const override;
  std::string name() const override { return "tum"; }

  const TumModelParams& params() const { return params_; }

  /// The heading-noise standard deviation used for a step of length `trans`
  /// at speed `v` — exposed for the Fig. 1 bench and tests.
  double heading_sigma(double trans, double v) const;

 private:
  TumModelParams params_;
};

}  // namespace srl
