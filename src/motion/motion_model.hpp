#pragma once

/// \file motion_model.hpp
/// \brief Probabilistic motion models for the particle filter's prediction
/// step. A motion model takes a particle pose and an odometry increment and
/// returns a noisy sample of the successor pose.

#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace srl {

/// One odometry increment as consumed by the prediction step.
struct OdometryDelta {
  /// Relative motion in the previous body frame (what wheel odometry
  /// integrates between two filter updates).
  Pose2 delta;
  /// Longitudinal speed reported by the odometry source (m/s). The TUM model
  /// uses this to shape the noise; note that under wheel slip this speed is
  /// itself corrupted — exactly the paper's experimental condition.
  double v{0.0};
  /// Time span of the increment (s).
  double dt{0.0};
};

/// Interface: stateless samplers, safe for concurrent use with distinct Rngs.
class MotionModel {
 public:
  virtual ~MotionModel() = default;

  /// Draw one successor pose for a particle at `pose` given odometry `odom`.
  virtual Pose2 sample(const Pose2& pose, const OdometryDelta& odom,
                       Rng& rng) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace srl
