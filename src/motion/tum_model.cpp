#include "motion/tum_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/angles.hpp"

namespace srl {

double TumMotionModel::heading_sigma(double trans, double v) const {
  const TumModelParams& p = params_;
  // Diff-drive-like growth with distance...
  const double uncapped = p.alpha_rot_trans * std::abs(trans);
  // ...capped by what the steering geometry and grip allow over this step.
  const double cap =
      p.beta_curvature * max_curvature(p.ackermann, v) * std::abs(trans);
  return std::min(uncapped, cap) + p.sigma_floor_theta;
}

Pose2 TumMotionModel::sample(const Pose2& pose, const OdometryDelta& odom,
                             Rng& rng) const {
  const TumModelParams& p = params_;
  const Pose2& d = odom.delta;
  const double trans = std::hypot(d.x, d.y);
  const double v = std::max(std::abs(odom.v),
                            odom.dt > 0.0 ? trans / odom.dt : 0.0);

  // Longitudinal slip noise: applied along the motion direction, growing
  // with distance traveled (slip scales with commanded wheel travel).
  const double sigma_trans = p.alpha_trans * trans + p.sigma_floor_xy;
  const double trans_hat = trans + rng.gaussian(sigma_trans);

  // Heading increment: optionally clamped to what the steering geometry and
  // grip could physically have produced over this step.
  double dtheta_mean = normalize_angle(d.theta);
  if (p.clamp_mean_heading) {
    const double envelope =
        p.envelope_margin * max_curvature(p.ackermann, v) * trans +
        p.sigma_floor_theta;
    dtheta_mean = std::clamp(dtheta_mean, -envelope, envelope);
  }

  // Heading noise: turn-proportional term plus the curvature-capped
  // translation term (the TUM correction).
  const double sigma_rot =
      p.alpha_rot * std::abs(dtheta_mean) + heading_sigma(trans, v);
  const double dtheta_hat = dtheta_mean + rng.gaussian(sigma_rot);

  // Lateral noise: bounded by the lateral offset a maximally curved path
  // would accumulate over this step (0.5 * kappa * s^2), never more than the
  // uncapped diff-drive-style lateral jitter.
  const double lat_cap = 0.5 * p.beta_curvature *
                         max_curvature(p.ackermann, v) * trans * trans;
  const double sigma_lat =
      std::min(p.alpha_trans * trans, lat_cap) + p.sigma_floor_xy;
  const double lat_hat = rng.gaussian(sigma_lat);

  // Advance along the arc: half the heading change before translating
  // (midpoint integration keeps the sample on the commanded arc).
  const double mid_heading = pose.theta + 0.5 * dtheta_hat +
                             (trans > 1e-6 ? std::atan2(d.y, d.x) : 0.0);
  const double cx = std::cos(mid_heading);
  const double sx = std::sin(mid_heading);
  return Pose2{pose.x + trans_hat * cx - lat_hat * sx,
               pose.y + trans_hat * sx + lat_hat * cx,
               normalize_angle(pose.theta + dtheta_hat)};
}

}  // namespace srl
