#include "motion/diff_drive.hpp"

#include <cmath>

#include "common/angles.hpp"

namespace srl {

Pose2 DiffDriveModel::sample(const Pose2& pose, const OdometryDelta& odom,
                             Rng& rng) const {
  const Pose2& d = odom.delta;
  const double trans = std::hypot(d.x, d.y);

  // Decompose into rot1 (turn toward the motion direction), trans, rot2
  // (remaining heading change). For tiny translations the direction of
  // motion is ill-defined; attribute everything to rot2 as Thrun suggests.
  double rot1 = 0.0;
  if (trans > 1e-6) rot1 = normalize_angle(std::atan2(d.y, d.x));
  const double rot2 = normalize_angle(d.theta - rot1);

  const DiffDriveParams& p = params_;
  const double rot1_hat =
      rot1 + rng.gaussian(std::sqrt(p.alpha1 * rot1 * rot1 +
                                    p.alpha2 * trans * trans) +
                          p.sigma_floor_theta);
  const double trans_hat =
      trans + rng.gaussian(std::sqrt(p.alpha3 * trans * trans +
                                     p.alpha4 * (rot1 * rot1 + rot2 * rot2)) +
                           p.sigma_floor_xy);
  const double rot2_hat =
      rot2 + rng.gaussian(std::sqrt(p.alpha1 * rot2 * rot2 +
                                    p.alpha2 * trans * trans) +
                          p.sigma_floor_theta);

  const double heading = pose.theta + rot1_hat;
  return Pose2{pose.x + trans_hat * std::cos(heading),
               pose.y + trans_hat * std::sin(heading),
               normalize_angle(pose.theta + rot1_hat + rot2_hat)};
}

}  // namespace srl
