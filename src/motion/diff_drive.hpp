#pragma once

/// \file diff_drive.hpp
/// \brief Classical odometry motion model for differential-drive robots
/// (Thrun, Burgard & Fox, "Probabilistic Robotics", ch. 5.4). The increment
/// is decomposed into rotation-translation-rotation and each component is
/// perturbed with noise proportional to the motion magnitudes via the alpha
/// parameters. This is the baseline the paper criticizes: because rotation
/// noise grows with *translation* (alpha2), fast straight driving produces
/// large heading dispersion — physically impossible for an Ackermann car.

#include "motion/motion_model.hpp"

namespace srl {

struct DiffDriveParams {
  double alpha1 = 0.25;   ///< rot noise from rotation
  double alpha2 = 0.08;   ///< rot noise from translation (the culprit at speed)
  double alpha3 = 0.10;   ///< trans noise from translation
  double alpha4 = 0.05;   ///< trans noise from rotation
  double sigma_floor_xy = 0.005;     ///< m, minimum positional jitter
  double sigma_floor_theta = 0.004;  ///< rad, minimum heading jitter
};

class DiffDriveModel final : public MotionModel {
 public:
  explicit DiffDriveModel(const DiffDriveParams& params = {})
      : params_{params} {}

  Pose2 sample(const Pose2& pose, const OdometryDelta& odom,
               Rng& rng) const override;
  std::string name() const override { return "diff_drive"; }

  const DiffDriveParams& params() const { return params_; }

 private:
  DiffDriveParams params_;
};

}  // namespace srl
