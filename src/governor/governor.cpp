#include "governor/governor.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace srl::governor {

// ---------------------------------------------------------------------------
// ComputeGovernor — the pure decision core.
// ---------------------------------------------------------------------------

ComputeGovernor::ComputeGovernor(GovernorConfig config) : config_{config} {
  units_per_ms_ =
      config_.units_per_ms > 0.0 ? config_.units_per_ms : kDefaultUnitsPerMs;
  SYNPF_EXPECTS_MSG(config_.max_beam_stride >= 1,
                    "governor beam-stride limit must be >= 1");
  SYNPF_EXPECTS_MSG(config_.min_particles >= 1,
                    "governor particle floor must be >= 1");
}

int ComputeGovernor::active_beams(int beams, int stride) {
  if (stride <= 1) return beams;
  // Matches ParticleFilter::set_beam_stride: indices 0, s, 2s, ...
  return (beams + stride - 1) / stride;
}

double ComputeGovernor::cost_units(int particles, int beams, int stride) {
  return static_cast<double>(particles) *
         static_cast<double>(active_beams(beams, stride));
}

double ComputeGovernor::effective_budget_units(double pressure) const {
  if (config_.budget_ms <= 0.0) return -1.0;  // unlimited
  const double p = std::clamp(pressure, 0.0, 1.0);
  return config_.budget_ms * units_per_ms_ * (1.0 - p);
}

GovernorDecision ComputeGovernor::decide(int particles, int beams,
                                         double pressure, bool grow) const {
  GovernorDecision d;
  d.particle_target = particles;
  d.budget_units = effective_budget_units(pressure);

  // Pillar 1: SUSPECT-driven growth back to the ceiling happens *before*
  // budgeting, so a tight budget can still veto it via the clamp below —
  // degradation always wins over ambition.
  if (grow && config_.adaptive && config_.max_particles > particles) {
    d.particle_target = config_.max_particles;
  }

  d.cost_units = cost_units(d.particle_target, beams, 1);
  if (d.budget_units < 0.0) return d;  // no budget declared: sizing only

  if (!config_.shed) {
    // Enforcer: fixed workload, the only lever is the deadline itself.
    if (d.cost_units > d.budget_units) {
      d.drop_update = true;
      d.shed_stage = 4;
    }
    return d;
  }

  // Stage 1: beam decimation. Raise the stride one notch at a time so the
  // engaged stage is the *least* aggressive one that fits.
  while (d.cost_units > d.budget_units &&
         d.beam_stride < config_.max_beam_stride) {
    ++d.beam_stride;
    d.cost_units = cost_units(d.particle_target, beams, d.beam_stride);
  }
  if (d.beam_stride > 1) d.shed_stage = 1;

  // Stage 2: clamp the cloud to what the budget buys at the decimated beam
  // count, floored so the filter never starves.
  if (d.cost_units > d.budget_units) {
    const int shed_beams = active_beams(beams, d.beam_stride);
    int affordable = config_.min_particles;
    if (shed_beams > 0) {
      affordable = static_cast<int>(d.budget_units /
                                    static_cast<double>(shed_beams));
    }
    const int clamped = std::max(config_.min_particles, affordable);
    if (clamped < d.particle_target) {
      d.particle_target = clamped;
      d.shed_stage = 2;
    }
    d.cost_units = cost_units(d.particle_target, beams, d.beam_stride);
  }

  // Stage 3: still over budget at the floor — skip the ESS resample (the
  // scoring pass dominates cost, but the resample's copy/normalize pass is
  // the last shavable work that doesn't touch the estimate's inputs).
  if (d.cost_units > d.budget_units) {
    d.skip_resample = true;
    d.shed_stage = 3;
  }
  return d;
}

GovernorDecision ComputeGovernor::decide_fixed(double cost,
                                               double pressure) const {
  GovernorDecision d;
  d.cost_units = std::max(0.0, cost);
  d.budget_units = effective_budget_units(pressure);
  if (d.budget_units >= 0.0 && d.cost_units > 0.0 &&
      d.cost_units > d.budget_units) {
    d.drop_update = true;
    d.shed_stage = 4;
  }
  return d;
}

// ---------------------------------------------------------------------------
// GovernedLocalizer — the decorator.
// ---------------------------------------------------------------------------

GovernedLocalizer::GovernedLocalizer(Localizer& inner, GovernorConfig config)
    : inner_{inner}, config_{config}, governor_{config} {}

void GovernedLocalizer::bind_filter(ParticleFilter* pf) {
  pf_ = pf;
  if (pf_ == nullptr) return;
  if (config_.max_particles <= 0) {
    config_.max_particles = pf_->current_particles();
    governor_ = ComputeGovernor{config_};
  }
  // Pillar 1: the cloud may now shrink on its own where the posterior is
  // tight; the governor grows it back under SUSPECT. Shedding (enforcer
  // mode) must leave the filter exactly as configured.
  if (config_.adaptive && config_.shed) pf_->set_kld_adaptive(true);
}

void GovernedLocalizer::bind_pressure(const fault::FaultPipeline* pipeline) {
  pipeline_ = pipeline;
}

void GovernedLocalizer::bind_supervisor(
    const recovery::SupervisedLocalizer* supervisor) {
  supervisor_ = supervisor;
}

void GovernedLocalizer::initialize(const Pose2& pose) {
  inner_.initialize(pose);
}

void GovernedLocalizer::on_odometry(const OdometryDelta& odom) {
  inner_.on_odometry(odom);
}

double GovernedLocalizer::poll_pressure(double stream_t) const {
  if (pipeline_ == nullptr) return 0.0;
  double strongest = 0.0;
  for (std::size_t i = 0; i < pipeline_->size(); ++i) {
    const fault::Injector& stage = pipeline_->stage(i);
    if (stage.name() != "compute_pressure") continue;
    strongest = std::max(strongest, stage.strength_at(stream_t));
  }
  return std::clamp(strongest, 0.0, 1.0);
}

Pose2 GovernedLocalizer::on_scan(const LaserScan& scan) {
  // Strict no-op configuration: forward untouched. Nothing below runs, no
  // substream is drawn, no knob is written — bitwise identical to the bare
  // inner localizer.
  if (!config_.adaptive && config_.budget_ms <= 0.0) {
    return inner_.on_scan(scan);
  }

  if (!seen_scan_) {
    first_scan_t_ = scan.t;
    seen_scan_ = true;
  }
  const double stream_t = scan.t - first_scan_t_;
  const std::uint64_t ordinal = updates_;
  ++updates_;

  const double pressure = poll_pressure(stream_t);
  last_pressure_ = pressure;

  const bool grow =
      supervisor_ != nullptr &&
      supervisor_->state() != recovery::HealthState::kHealthy;

  GovernorDecision d;
  if (pf_ != nullptr && config_.shed) {
    d = governor_.decide(pf_->current_particles(), pf_->total_beams(),
                         pressure, grow);
  } else if (pf_ != nullptr) {
    // Enforcer over a particle stack: cost of the *fixed* configured load.
    d = governor_.decide_fixed(
        ComputeGovernor::cost_units(pf_->current_particles(),
                                    pf_->total_beams(), 1),
        pressure);
  } else {
    d = governor_.decide_fixed(config_.nominal_cost_units, pressure);
  }
  journal(scan.t, d);  // edge-detects against last_stage_, so update after
  last_stage_ = d.shed_stage;
  publish(d);

  if (d.drop_update) {
    // Deadline miss: the update is simply not run. The inner stack keeps
    // its odometry-propagated state and coasts; the estimate is whatever
    // the last completed update left behind.
    ++deadline_misses_;
    if (c_misses_ != nullptr) c_misses_->add();
    return inner_.pose();
  }

  apply(d, ordinal);

  if (pf_ != nullptr) {
    particles_sum_ += static_cast<std::uint64_t>(pf_->current_particles());
    beams_sum_ += static_cast<std::uint64_t>(pf_->active_beams());
    if (min_particles_seen_ == 0 ||
        pf_->current_particles() < min_particles_seen_) {
      min_particles_seen_ = pf_->current_particles();
    }
  }
  costs_.push_back(d.cost_units);
  if (c_updates_ != nullptr) c_updates_->add();

  return inner_.on_scan(scan);
}

void GovernedLocalizer::apply(const GovernorDecision& d,
                              std::uint64_t ordinal) {
  if (pf_ == nullptr || !config_.shed) return;
  if (d.particle_target != pf_->current_particles()) {
    pf_->govern_resize(d.particle_target, ordinal);
    ++resizes_;
    if (c_resizes_ != nullptr) c_resizes_->add();
  }
  pf_->set_beam_stride(d.beam_stride);
  // Stage 3 sheds *most* resamples, never all of them: under a sustained
  // full-pressure envelope a permanently suppressed resample degenerates
  // the weights (ESS -> 1 particle) and kills the filter the budget was
  // trying to save. Every kResampleKeepPeriod-th update — keyed by the
  // governor's own ordinal, so the schedule is a pure function of the
  // update index — still resamples.
  const bool suppress =
      d.skip_resample && (ordinal % kResampleKeepPeriod) != 0;
  pf_->set_resample_suppressed(suppress);
  if (d.beam_stride > 1) {
    ++shed_beam_updates_;
    if (c_shed_beams_ != nullptr) c_shed_beams_->add();
  }
  if (d.shed_stage >= 2) {
    ++shed_particle_updates_;
    if (c_shed_particles_ != nullptr) c_shed_particles_->add();
  }
  if (suppress) {
    ++skipped_resamples_;
    if (c_skipped_resamples_ != nullptr) c_skipped_resamples_->add();
  }
}

void GovernedLocalizer::journal(double scan_t, const GovernorDecision& d) {
  if (events_ == nullptr) return;
  using telemetry::EventCategory;
  using telemetry::EventSeverity;

  // Deadline-miss runs journal as edges (like fault envelopes): one kError
  // at entry, one kInfo at recovery — not one event per missed scan.
  if (d.drop_update && !missing_) {
    missing_ = true;
    auto data = json::Value::object();
    data.set("cost_units", json::Value::number(d.cost_units));
    data.set("budget_units", json::Value::number(d.budget_units));
    events_->emit(scan_t, EventSeverity::kError, EventCategory::kFilter,
                  "governor.deadline_miss", std::move(data));
  } else if (!d.drop_update && missing_) {
    missing_ = false;
    events_->emit(scan_t, EventSeverity::kInfo, EventCategory::kFilter,
                  "governor.deadline_recovered");
  }

  // Ladder transitions journal as edges too: entering a different stage
  // than the previous update is a "shed", returning to stage 0 a
  // "recovered".
  if (d.shed_stage > 0 && d.shed_stage != last_stage_) {
    auto data = json::Value::object();
    data.set("stage", json::Value::number(static_cast<double>(d.shed_stage)));
    data.set("beam_stride",
             json::Value::number(static_cast<double>(d.beam_stride)));
    data.set("particle_target",
             json::Value::number(static_cast<double>(d.particle_target)));
    data.set("skip_resample", json::Value::boolean(d.skip_resample));
    data.set("cost_units", json::Value::number(d.cost_units));
    data.set("budget_units", json::Value::number(d.budget_units));
    events_->emit(scan_t, EventSeverity::kWarn, EventCategory::kFilter,
                  "governor.shed", std::move(data));
  } else if (d.shed_stage == 0 && last_stage_ > 0) {
    events_->emit(scan_t, EventSeverity::kInfo, EventCategory::kFilter,
                  "governor.recovered");
  }
}

void GovernedLocalizer::publish(const GovernorDecision& d) {
  if (g_pressure_ != nullptr) g_pressure_->set(last_pressure_);
  if (g_particles_ != nullptr) {
    g_particles_->set(static_cast<double>(d.particle_target));
  }
  if (g_beams_ != nullptr && pf_ != nullptr) {
    g_beams_->set(static_cast<double>(
        ComputeGovernor::active_beams(pf_->total_beams(), d.beam_stride)));
  }
  if (g_stage_ != nullptr) g_stage_->set(static_cast<double>(d.shed_stage));
  if (g_cost_ != nullptr) g_cost_->set(d.cost_units);
  if (g_budget_ != nullptr) g_budget_->set(d.budget_units);
}

void GovernedLocalizer::set_telemetry(const telemetry::Sink& sink) {
  events_ = sink.events;
  if (sink.metrics != nullptr) {
    g_pressure_ = &sink.metrics->gauge("governor.pressure");
    g_particles_ = &sink.metrics->gauge("governor.particles");
    g_beams_ = &sink.metrics->gauge("governor.beams");
    g_stage_ = &sink.metrics->gauge("governor.stage");
    g_cost_ = &sink.metrics->gauge("governor.cost_units");
    g_budget_ = &sink.metrics->gauge("governor.budget_units");
    c_updates_ = &sink.metrics->counter("governor.updates");
    c_misses_ = &sink.metrics->counter("governor.deadline_misses");
    c_resizes_ = &sink.metrics->counter("governor.resizes");
    c_shed_beams_ = &sink.metrics->counter("governor.shed_beam_updates");
    c_shed_particles_ =
        &sink.metrics->counter("governor.shed_particle_updates");
    c_skipped_resamples_ =
        &sink.metrics->counter("governor.skipped_resamples");
  }
  inner_.set_telemetry(sink);
}

double GovernedLocalizer::mean_particles() const {
  const std::uint64_t executed = updates_ - deadline_misses_;
  if (executed == 0) return 0.0;
  return static_cast<double>(particles_sum_) / static_cast<double>(executed);
}

double GovernedLocalizer::mean_beams() const {
  const std::uint64_t executed = updates_ - deadline_misses_;
  if (executed == 0) return 0.0;
  return static_cast<double>(beams_sum_) / static_cast<double>(executed);
}

double GovernedLocalizer::cost_percentile(double q) const {
  if (costs_.empty()) return 0.0;
  std::vector<double> sorted = costs_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(rank);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace srl::governor
