#pragma once

/// \file governor.hpp
/// \brief Deterministic per-update compute governor (DESIGN.md §16): closes
/// the loop between a declared latency budget and the particle filter's
/// workload knobs, so a compute spike degrades the estimate *gracefully*
/// (fewer beams, then fewer particles, then a skipped resample) instead of
/// collapsing into particle starvation or a missed deadline.
///
/// Three pillars:
///
///  1. **KLD/ESS-driven adaptive particle sizing.** With `adaptive` on, the
///     bound filter's KLD-adaptive resampling is enabled (the cloud shrinks
///     on the straights, where the posterior is tight) and the governor
///     grows the cloud back to its ceiling whenever the bound supervisor
///     latches SUSPECT or worse — uncertainty is exactly when particles pay
///     for themselves. Resizes go through `ParticleFilter::govern_resize`,
///     whose draws come from the pinned `kPfStreamGovernor` substream keyed
///     by the governor's own update ordinal: a pure function of (seed,
///     cloud, target, ordinal), bitwise identical at any thread count.
///
///  2. **A graceful-degradation ladder under a declared budget**
///     (`GovernorConfig::budget_ms`, usually fed from `SRL_BUDGET_MS`).
///     Decisions use *virtual cost* accounting — `particles x active_beams`
///     work units against `budget_ms x units_per_ms`, with `units_per_ms`
///     calibrated once per range backend — **never wall clock in the
///     control path**. A wall-clock-driven governor would shed differently
///     on every machine and run; the virtual-cost governor's entire
///     decision sequence is a pure function of the update index and the
///     fault envelope, so governed runs replay bitwise (and srl-lint's
///     `det-wall-clock-governor` rule keeps timer reads out of this
///     directory). The ladder sheds in severity order: beam decimation →
///     particle floor clamp → skip-resample; every engagement is journaled
///     as a PR-6 event and exported as `governor.*` telemetry. Budget off
///     (and adaptive off) is a strict bitwise no-op, like every other
///     decorator in the repo.
///
///  3. **The `compute_pressure` fault axis.** The governor polls the bound
///     `FaultPipeline` for `compute_pressure` stages (fault/injector.hpp)
///     and scales the declared budget by (1 - strength): a severity ramp
///     squeezes the budget deterministically, which the scenario matrix,
///     the frontier bisection and `bench_compare --tradeoff` all consume.
///
/// Composition (canonical, outermost first):
///
///     GovernedLocalizer(SupervisedLocalizer(FaultedLocalizer(SynPf)))
///
/// The governor is outermost so it observes the supervisor's health state
/// and can skip the whole update (deadline enforcement) before any inner
/// layer runs. With `shed = false` the wrapper becomes a plain *budget
/// enforcer*: it never touches the filter's knobs and simply drops updates
/// whose fixed workload exceeds the effective budget — the "ungoverned
/// fixed-count" baseline the bench artifact compares against.

#include <cstdint>
#include <string>
#include <vector>

#include "core/localizer.hpp"
#include "core/particle_filter.hpp"
#include "fault/pipeline.hpp"
#include "recovery/supervised_localizer.hpp"
#include "telemetry/telemetry.hpp"

namespace srl::governor {

/// Virtual-cost calibration: work units (particles x beams) one millisecond
/// buys on the reference backend (CDDT, scalar kernels, the PR-9 box:
/// 1200 particles x 60 beams ~ 1.5 ms). The constant is pinned — it is a
/// *unit definition*, not a measurement; re-calibrating it rescales every
/// budget in lockstep and never enters any per-update control decision.
constexpr double kDefaultUnitsPerMs = 48000.0;

/// Nominal per-update virtual cost of the CartoLite scan matcher (no
/// particle/beam knobs to shed — used by enforcer-mode wrappers over
/// localizers without a bound filter).
constexpr double kCartoNominalCostUnits = 48000.0;

/// Stage-3 resample shedding keeps every N-th resample (by governor update
/// ordinal): shedding ~(N-1)/N of the resample cost without ever letting
/// the weights degenerate unboundedly under a sustained envelope.
constexpr std::uint64_t kResampleKeepPeriod = 4;

struct GovernorConfig {
  /// Pillar 1: enable KLD-adaptive resampling on the bound filter and grow
  /// the cloud back to `max_particles` under the supervisor's SUSPECT latch.
  bool adaptive = true;
  /// Declared per-update latency budget, ms. <= 0 disables the ladder
  /// entirely (no decision, no draw — a strict bitwise no-op).
  double budget_ms = 0.0;
  /// Work units per millisecond; <= 0 selects kDefaultUnitsPerMs.
  double units_per_ms = 0.0;
  /// Fixed per-update cost to account when no filter is bound (e.g. a
  /// governed CartoLite). <= 0 makes a filterless wrapper budget-blind.
  double nominal_cost_units = 0.0;
  /// Ladder stage 2 floor: the clamp never starves the cloud below this.
  int min_particles = 300;
  /// Ceiling for SUSPECT-driven growth; 0 = the cloud size at bind time.
  int max_particles = 0;
  /// Ladder stage 1 limit: score every k-th beam, k <= this.
  int max_beam_stride = 4;
  /// true = governed (shed via the ladder); false = budget *enforcer* (fixed
  /// workload, updates over budget are dropped — a deadline miss).
  bool shed = true;

  /// Everything off: the wrapper forwards untouched (bitwise no-op).
  static GovernorConfig off() {
    GovernorConfig config;
    config.adaptive = false;
    config.budget_ms = 0.0;
    return config;
  }
};

/// One update's verdict — a pure function of (config, particles, beams,
/// pressure, grow), with no hidden state. `shed_stage` names the deepest
/// ladder rung engaged: 0 none, 1 beam decimation, 2 particle clamp,
/// 3 skip-resample, 4 dropped update (enforcer only).
struct GovernorDecision {
  int beam_stride = 1;
  int particle_target = 0;  ///< cloud size the update should run at
  bool skip_resample = false;
  bool drop_update = false;
  int shed_stage = 0;
  double cost_units = 0.0;    ///< virtual cost of the (shed) workload
  double budget_units = 0.0;  ///< pressure-scaled budget; < 0 = unlimited
};

/// The decision core, separated from the decorator so the ladder is
/// unit-testable as the pure function it must be.
class ComputeGovernor {
 public:
  explicit ComputeGovernor(GovernorConfig config);

  const GovernorConfig& config() const { return config_; }
  double units_per_ms() const { return units_per_ms_; }

  /// Virtual cost of one update: particles x beams surviving `stride`.
  static double cost_units(int particles, int beams, int stride);
  /// Beams surviving decimation at `stride`.
  static int active_beams(int beams, int stride);

  /// Decide the next update's workload for a bound particle filter.
  /// `grow` requests SUSPECT-driven growth back to the ceiling.
  GovernorDecision decide(int particles, int beams, double pressure,
                          bool grow) const;

  /// Decide for a fixed, knobless workload (`nominal_cost_units`): the only
  /// possible degradation is dropping the update.
  GovernorDecision decide_fixed(double cost, double pressure) const;

 private:
  double effective_budget_units(double pressure) const;

  GovernorConfig config_;
  double units_per_ms_;
};

/// Decorator: wraps any `Localizer`, applies the governor's verdict to the
/// bound `ParticleFilter` before forwarding each scan. Not owned; the inner
/// localizer, filter, pipeline and supervisor must outlive the wrapper.
class GovernedLocalizer final : public Localizer {
 public:
  GovernedLocalizer(Localizer& inner, GovernorConfig config);

  /// Bind the particle cloud whose knobs the ladder turns (SynPF stacks).
  /// With `adaptive` on this also enables KLD resampling on the filter.
  /// Optional: without it the wrapper can only account a nominal cost.
  void bind_filter(ParticleFilter* pf);
  /// Poll this pipeline's `compute_pressure` stages for budget pressure.
  void bind_pressure(const fault::FaultPipeline* pipeline);
  /// Grow the cloud under this supervisor's SUSPECT latch (pillar 1).
  void bind_supervisor(const recovery::SupervisedLocalizer* supervisor);

  void initialize(const Pose2& pose) override;
  void on_odometry(const OdometryDelta& odom) override;
  Pose2 on_scan(const LaserScan& scan) override;
  Pose2 pose() const override { return inner_.pose(); }
  std::string name() const override {
    // The strict no-op configuration forwards the bare name too: a wrapper
    // that changes nothing must not claim to govern anything.
    if (!config_.adaptive && config_.budget_ms <= 0.0) return inner_.name();
    return inner_.name() + (config_.shed ? "+governed" : "+budgeted");
  }
  double mean_scan_update_ms() const override {
    return inner_.mean_scan_update_ms();
  }
  double total_busy_s() const override { return inner_.total_busy_s(); }
  void set_telemetry(const telemetry::Sink& sink) override;

  const GovernorConfig& config() const { return config_; }

  // Per-run accounting (all pure reads; the bench schema's governor block).
  std::uint64_t updates() const { return updates_; }
  std::uint64_t deadline_misses() const { return deadline_misses_; }
  std::uint64_t shed_beam_updates() const { return shed_beam_updates_; }
  std::uint64_t shed_particle_updates() const { return shed_particle_updates_; }
  std::uint64_t skipped_resamples() const { return skipped_resamples_; }
  std::uint64_t resizes() const { return resizes_; }
  double mean_particles() const;
  int min_particles_seen() const { return min_particles_seen_; }
  double mean_beams() const;
  /// Percentiles of the executed updates' virtual cost (deterministic —
  /// the CI tradeoff gate reads these instead of wall clock).
  double cost_units_p50() const { return cost_percentile(0.50); }
  double cost_units_p99() const { return cost_percentile(0.99); }
  /// Pressure observed at the most recent scan (flight-recorder probe).
  double last_pressure() const { return last_pressure_; }
  int last_shed_stage() const { return last_stage_; }

 private:
  double poll_pressure(double stream_t) const;
  double cost_percentile(double q) const;
  void apply(const GovernorDecision& decision, std::uint64_t ordinal);
  void journal(double scan_t, const GovernorDecision& decision);
  void publish(const GovernorDecision& decision);

  Localizer& inner_;
  GovernorConfig config_;
  ComputeGovernor governor_;
  ParticleFilter* pf_{nullptr};
  const fault::FaultPipeline* pipeline_{nullptr};
  const recovery::SupervisedLocalizer* supervisor_{nullptr};

  std::uint64_t updates_{0};
  std::uint64_t deadline_misses_{0};
  std::uint64_t shed_beam_updates_{0};
  std::uint64_t shed_particle_updates_{0};
  std::uint64_t skipped_resamples_{0};
  std::uint64_t resizes_{0};
  std::uint64_t particles_sum_{0};
  std::uint64_t beams_sum_{0};
  int min_particles_seen_{0};
  std::vector<double> costs_;  ///< executed updates' virtual cost
  double last_pressure_{0.0};
  int last_stage_{0};
  bool missing_{false};  ///< inside a contiguous deadline-miss run

  double first_scan_t_{0.0};
  bool seen_scan_{false};

  telemetry::EventLog* events_{nullptr};
  telemetry::Gauge* g_pressure_{nullptr};
  telemetry::Gauge* g_particles_{nullptr};
  telemetry::Gauge* g_beams_{nullptr};
  telemetry::Gauge* g_stage_{nullptr};
  telemetry::Gauge* g_cost_{nullptr};
  telemetry::Gauge* g_budget_{nullptr};
  telemetry::Counter* c_updates_{nullptr};
  telemetry::Counter* c_misses_{nullptr};
  telemetry::Counter* c_resizes_{nullptr};
  telemetry::Counter* c_shed_beams_{nullptr};
  telemetry::Counter* c_shed_particles_{nullptr};
  telemetry::Counter* c_skipped_resamples_{nullptr};
};

}  // namespace srl::governor
