/// \file bench_table1.cpp
/// \brief Reproduces **Table I** of the paper: lap time, lateral error,
/// scan alignment and compute load for {Cartographer (CartoLite), SynPF}
/// x {high-quality, low-quality} wheel odometry.
///
/// The odometry quality is controlled by the tire grip coefficient exactly
/// as in the paper's pull test: mu = 0.76 (26 N nominal) vs mu = 0.55
/// (19 N taped tires). Both regimes run the same speed scaling.
///
/// Env knobs: SRL_LAPS (timed laps per cell, default 10), SRL_FAST=1
/// (2 laps), SRL_SEED.

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/synpf.hpp"
#include "eval/experiment.hpp"
#include "eval/table.hpp"
#include "gridmap/track_generator.hpp"
#include "slam/pure_localization.hpp"
#include "telemetry/telemetry.hpp"

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

}  // namespace

int main() {
  using namespace srl;
  using benchutil::out_path;

  const bool fast = env_int("SRL_FAST", 0) != 0;
  const int laps = fast ? 2 : env_int("SRL_LAPS", 10);
  const auto seed = static_cast<std::uint64_t>(env_int("SRL_SEED", 1234));

  const Track track = TrackGenerator::test_track();
  auto map = std::make_shared<const OccupancyGrid>(track.grid);
  const LidarConfig lidar{};

  struct Cell {
    std::string method;
    std::string odom;
    double mu;
    ExperimentResult r;
    /// Per-cell registry holding the localizer's stage histograms.
    std::shared_ptr<telemetry::MetricsRegistry> metrics;
  };
  std::vector<Cell> cells;

  const double kMuHq = 0.76;  // 26 N pull test on a 3.5 kg car
  const double kMuLq = 0.55;  // 19 N with taped tires

  std::cout << "bench_table1: Table I reproduction (" << laps
            << " timed laps per cell)\n";

  for (const bool synpf : {false, true}) {
    for (const double mu : {kMuHq, kMuLq}) {
      ExperimentConfig cfg;
      cfg.laps = laps;
      cfg.mu = mu;
      cfg.seed = seed + (mu == kMuHq ? 0 : 1);
      ExperimentRunner runner{track, cfg};

      std::unique_ptr<Localizer> localizer;
      if (synpf) {
        SynPfConfig pf;
        localizer = std::make_unique<SynPf>(pf, map, lidar);
      } else {
        PureLocalizationOptions pl;
        localizer = std::make_unique<CartoLocalizer>(pl, map, lidar);
      }
      std::cout << "  running " << localizer->name() << " / "
                << (mu == kMuHq ? "HQ" : "LQ") << " ..." << std::flush;
      auto metrics = std::make_shared<telemetry::MetricsRegistry>();
      Cell cell{localizer->name(), mu == kMuHq ? "HQ" : "LQ", mu,
                runner.run(*localizer, nullptr,
                           telemetry::Sink{metrics.get(), nullptr}),
                metrics};
      std::cout << " done (" << cell.r.lap_times.size() << " laps"
                << (cell.r.crashed ? ", CRASHED" : "") << ")\n";
      cells.push_back(std::move(cell));
    }
  }

  TextTable table{{"Method", "Odom", "LapTime mu [s]", "sigma", "Err mu [cm]",
                   "sigma", "ScanAlign [%]", "Load [%]", "Upd p50 [ms]",
                   "p95", "p99", "PoseRMSE [cm]", "Lat [cm]", "Long [cm]",
                   "Hdg [mrad]", "Slip [m/s]", "Drift [m/lap]"}};
  for (const Cell& c : cells) {
    table.add_row({c.method, c.odom, TextTable::num(c.r.lap_time_mean),
                   TextTable::num(c.r.lap_time_std),
                   TextTable::num(c.r.lateral_mean_cm),
                   TextTable::num(c.r.lateral_std_cm),
                   TextTable::num(c.r.scan_alignment, 1),
                   TextTable::num(c.r.load_percent, 2),
                   TextTable::num(c.r.update_p50_ms, 2),
                   TextTable::num(c.r.update_p95_ms, 2),
                   TextTable::num(c.r.update_p99_ms, 2),
                   TextTable::num(c.r.pose_rmse_m * 100.0, 2),
                   TextTable::num(c.r.pose_lat_rmse_m * 100.0, 2),
                   TextTable::num(c.r.pose_long_rmse_m * 100.0, 2),
                   TextTable::num(c.r.heading_rmse_rad * 1000.0, 1),
                   TextTable::num(c.r.mean_abs_slip, 3),
                   TextTable::num(c.r.odom_drift_m_per_lap, 2)});
  }
  std::cout << "\n" << table.render();

  // Per-stage latency percentiles from each cell's metrics registry — the
  // breakdown behind the Update column (predict / raycast / weight /
  // resample for SynPF; local match / insert / global for CartoLite).
  TextTable stages{{"Method", "Odom", "Stage", "n", "mean [ms]", "p50 [ms]",
                    "p95 [ms]", "p99 [ms]", "max [ms]"}};
  for (const Cell& c : cells) {
    for (const auto& row : c.metrics->rows()) {
      if (row.kind != "histogram" || row.hist.count == 0) continue;
      stages.add_row({c.method, c.odom, row.name,
                      std::to_string(row.hist.count),
                      TextTable::num(row.hist.mean, 3),
                      TextTable::num(row.hist.p50, 3),
                      TextTable::num(row.hist.p95, 3),
                      TextTable::num(row.hist.p99, 3),
                      TextTable::num(row.hist.max, 3)});
    }
  }
  std::cout << "\nPer-stage scan-update latency:\n" << stages.render();

  // Paper's numbers for side-by-side comparison.
  std::cout << "\nPaper (Table I): Cartographer HQ 9.167/0.097 6.864/0.264 "
               "69.357 4.2 | LQ 9.428/0.126 11.432/1.134 61.710\n"
               "                 SynPF        HQ 9.184/0.153 8.223/0.406 "
               "80.603 2.17 | LQ 9.280/0.093 7.686/1.179 79.924\n";

  // Headline deltas (the paper's robustness claim).
  const auto find = [&](const std::string& m,
                        const std::string& o) -> const ExperimentResult& {
    for (const Cell& c : cells) {
      if (c.method == m && c.odom == o) return c.r;
    }
    static ExperimentResult empty;
    return empty;
  };
  const auto& carto_hq = find("Cartographer", "HQ");
  const auto& carto_lq = find("Cartographer", "LQ");
  const auto& syn_hq = find("SynPF", "HQ");
  const auto& syn_lq = find("SynPF", "LQ");
  const auto pct = [](double from, double to) {
    return from != 0.0 ? 100.0 * (to - from) / from : 0.0;
  };
  std::cout << "\nHQ->LQ lateral error change:  Cartographer "
            << TextTable::num(pct(carto_hq.lateral_mean_cm,
                                  carto_lq.lateral_mean_cm), 1)
            << "% (paper +66.6%) | SynPF "
            << TextTable::num(pct(syn_hq.lateral_mean_cm,
                                  syn_lq.lateral_mean_cm), 1)
            << "% (paper -6.9%)\n";
  std::cout << "HQ->LQ scan alignment change: Cartographer "
            << TextTable::num(pct(carto_hq.scan_alignment,
                                  carto_lq.scan_alignment), 1)
            << "% (paper -11.0%) | SynPF "
            << TextTable::num(pct(syn_hq.scan_alignment,
                                  syn_lq.scan_alignment), 1)
            << "% (paper -0.8%)\n";

  CsvWriter csv{out_path("table1.csv")};
  csv.write_header({"method", "odom", "mu", "lap_time_mean", "lap_time_std",
                    "lateral_mean_cm", "lateral_std_cm", "scan_align",
                    "load_percent", "update_ms", "update_p50_ms",
                    "update_p95_ms", "update_p99_ms", "slip",
                    "drift_m_per_lap", "crashed"});
  for (const Cell& c : cells) {
    csv.write_row(std::vector<std::string>{
        c.method, c.odom, TextTable::num(c.mu, 2),
        TextTable::num(c.r.lap_time_mean), TextTable::num(c.r.lap_time_std),
        TextTable::num(c.r.lateral_mean_cm),
        TextTable::num(c.r.lateral_std_cm),
        TextTable::num(c.r.scan_alignment, 2),
        TextTable::num(c.r.load_percent, 2),
        TextTable::num(c.r.mean_update_ms, 3),
        TextTable::num(c.r.update_p50_ms, 3),
        TextTable::num(c.r.update_p95_ms, 3),
        TextTable::num(c.r.update_p99_ms, 3),
        TextTable::num(c.r.mean_abs_slip, 3),
        TextTable::num(c.r.odom_drift_m_per_lap, 3),
        c.r.crashed ? "1" : "0"});
  }
  std::cout << "\nwrote out/table1.csv\n";

  // Full metric dump (stage histograms, health gauges, backend counters)
  // for each cell, for offline analysis.
  for (const Cell& c : cells) {
    const std::string path =
        out_path("table1_metrics_" + c.method + "_" + c.odom + ".csv");
    if (c.metrics->write_csv(path)) std::cout << "wrote " << path << "\n";
  }
  return 0;
}
