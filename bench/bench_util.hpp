#pragma once

/// \file bench_util.hpp
/// \brief Shared helpers for the experiment-style bench harnesses: build
/// localizers over a track, run Table-I style cells, read env knobs.

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "core/synpf.hpp"
#include "eval/experiment.hpp"
#include "eval/trace.hpp"
#include "gridmap/track_generator.hpp"
#include "slam/pure_localization.hpp"
#include "telemetry/telemetry.hpp"

namespace srl::benchutil {

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

inline bool fast_mode() { return env_int("SRL_FAST", 0) != 0; }

/// Laps per experiment cell: SRL_LAPS, or `fallback` (1 in fast mode).
inline int bench_laps(int fallback) {
  if (fast_mode()) return 1;
  return env_int("SRL_LAPS", fallback);
}

/// Benchmark outputs (CSV series, BENCH_*.json) land in a gitignored
/// `out/` directory instead of littering the repo root; created on first
/// use, relative to the working directory.
inline std::string out_path(const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("out", ec);
  return (std::filesystem::path("out") / name).string();
}

/// SynPF with the CDDT backend (fast construction for sweeps).
inline std::unique_ptr<SynPf> make_synpf(
    std::shared_ptr<const OccupancyGrid> map, const LidarConfig& lidar,
    SynPfConfig cfg = {}) {
  cfg.range = RangeMethodKind::kCddt;
  return std::make_unique<SynPf>(cfg, std::move(map), lidar);
}

inline std::unique_ptr<CartoLocalizer> make_carto(
    std::shared_ptr<const OccupancyGrid> map, const LidarConfig& lidar,
    PureLocalizationOptions opt = {}) {
  return std::make_unique<CartoLocalizer>(opt, std::move(map), lidar);
}

/// Replay `trace` into `localizer` twice and report the second pass: the
/// first pass is a fixed, untimed warm-up (page faults on first-touched
/// slabs, cold i/d-caches and branch predictors otherwise land in the
/// timing columns — the same protocol the robustness matrix uses for its
/// SRL_RECORDER_AB wall-clock A/B). The warm-up replay advances the
/// filter's RNG deterministically, so warmed numbers stay bitwise
/// reproducible run to run and thread/SIMD-invariant like any other
/// replay; they are just not comparable to a cold single replay.
inline SensorTrace::ReplayResult replay_warmed(const SensorTrace& trace,
                                               Localizer& localizer,
                                               telemetry::Sink sink = {}) {
  (void)trace.replay(localizer);
  return trace.replay(localizer, sink);
}

/// Run one closed-loop cell on `track` with grip `mu`.
inline ExperimentResult run_cell(const Track& track, Localizer& localizer,
                                 double mu, int laps,
                                 std::uint64_t seed = 1234) {
  ExperimentConfig cfg;
  cfg.mu = mu;
  cfg.laps = laps;
  cfg.seed = seed;
  ExperimentRunner runner{track, cfg};
  return runner.run(localizer);
}

}  // namespace srl::benchutil
