/// \file bench_robustness_matrix.cpp
/// \brief The robustness scenario matrix (DESIGN.md §10): every localizer
/// raced closed-loop under every fault regime, scored with the paper's
/// metrics, and serialized to the machine-readable `BENCH_robustness.json`
/// that `tools/bench_compare` gates CI on.
///
/// The reproduced headline (paper Sec. IV, generalized from grip to a fault
/// taxonomy): under degraded odometry SynPF's lateral error stays nearly
/// flat while the Cartographer-style baseline degrades by a strictly larger
/// factor. The matrix prints the full grid, the headline degradation
/// factors, and fingerprints every fault regime's corrupted sensor trace so
/// regressions in the fault RNG schedule are bitwise-visible.
///
/// Usage: bench_robustness_matrix [output.json]
///   SRL_FAST=1          reduced smoke grid (2 faults x 2 severities, 1 lap)
///   SRL_LAPS=n          laps per cell
///   SRL_BUDGET_MS=x     per-update compute budget for the governed kinds
///                       (default 2.0 ms; the compute-pressure axis
///                       squeezes it — DESIGN.md §16)
///   SRL_GIT_SHA         recorded into provenance when set
///   SRL_BLACKBOX_DIR=d  black-box artifact directory (default "blackbox";
///                       set to "" to run with the flight recorder off)
///   SRL_RECORDER_AB=1   after the recorded grid, re-run with the recorder
///                       off to measure overhead and verify the recorder is
///                       a bitwise no-op on every cell's metrics

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "governor/governor.hpp"
#include "eval/bench_compare.hpp"
#include "eval/benchmark_json.hpp"
#include "eval/dead_reckoning.hpp"
#include "eval/fault_replay.hpp"
#include "eval/scenario_matrix.hpp"
#include "eval/table.hpp"

int main(int argc, char** argv) {
  using namespace srl;
  using namespace srl::benchutil;

  const std::string out_file =
      argc > 1 ? argv[1] : out_path("BENCH_robustness.json");

  ScenarioMatrixConfig config = fast_mode() ? ScenarioMatrix::smoke_config()
                                            : ScenarioMatrix::full_config();
  config.experiment.laps = bench_laps(config.experiment.laps);
  const char* bb_dir = std::getenv("SRL_BLACKBOX_DIR");
  config.blackbox_dir = bb_dir != nullptr ? bb_dir : "blackbox";
  config.track_name = "test_track";
  if (const char* budget = std::getenv("SRL_BUDGET_MS")) {
    config.budget_ms = std::atof(budget);
  }

  const Track track = TrackGenerator::test_track();
  std::cout << "bench_robustness_matrix: " << config.localizers.size()
            << " localizers x " << config.scenarios.size() << " scenarios, "
            << config.experiment.laps << " laps per cell"
            << (fast_mode() ? " (smoke grid)" : "")
            << (config.blackbox_dir.empty()
                    ? " [recorder off]"
                    : " [recorder on -> " + config.blackbox_dir + "]")
            << "\n";

  // ---- Fault-trace fingerprints -----------------------------------------
  // One clean closed-loop trace, corrupted per fault regime: the hash is a
  // pure function of (sim seed, fault seed, fault stack), so two runs of
  // this bench — at any SRL_THREADS — must produce identical fingerprints.
  BenchDocument doc;
  {
    SensorTrace clean;
    ExperimentConfig tcfg = config.experiment;
    tcfg.seed = config.seed;
    tcfg.laps = 1;
    tcfg.max_sim_time = fast_mode() ? 10.0 : 20.0;
    ExperimentRunner runner{track, tcfg};
    DeadReckoning driver;
    runner.run(driver, &clean);
    for (const ScenarioSpec& spec : config.scenarios) {
      // Kidnap is a pseudo-fault (the true vehicle teleports, the sensor
      // stream is never corrupted), so there is no trace to fingerprint.
      if (spec.fault == "kidnap") continue;
      fault::FaultPipeline pipeline{config.fault_seed, config.experiment.lidar};
      if (spec.fault != "none" || spec.severity != 0.0) {
        pipeline.add(spec.fault, spec.severity);
      }
      const SensorTrace corrupted = corrupt_trace(pipeline, clean);
      FaultTraceFingerprint fp;
      fp.fault = spec.fault;
      fp.severity = spec.severity;
      fp.trace_hash = trace_hash(corrupted);
      fp.n_scans = corrupted.scans().size();
      fp.n_odometry = corrupted.odometry().size();
      doc.fault_traces.push_back(fp);
    }
    std::cout << "fingerprinted " << doc.fault_traces.size()
              << " fault regimes over a " << clean.scans().size()
              << "-scan trace\n";
  }

  // ---- The grid ---------------------------------------------------------
  // With the A/B requested, a first untimed recorder-off grid warms page
  // caches and the allocator so neither timed grid pays first-run cost —
  // otherwise whichever variant runs first looks a few percent slower.
  const bool run_ab = std::getenv("SRL_RECORDER_AB") != nullptr &&
                      !config.blackbox_dir.empty();
  using bench_clock = std::chrono::steady_clock;
  if (run_ab) {
    ScenarioMatrixConfig warm = config;
    warm.blackbox_dir.clear();
    std::cout << "recorder A/B: warm-up grid (untimed, recorder off)...\n";
    (void)ScenarioMatrix{warm}.run(track);
  }
  const ScenarioMatrix matrix{config};
  const auto grid_t0 = bench_clock::now();
  doc.cells = matrix.run(track);
  const double grid_wall_s =
      std::chrono::duration<double>(bench_clock::now() - grid_t0).count();

  TextTable table{{"localizer", "fault", "sev", "lat mu [cm]", "lat sigma",
                   "align [%]", "ESS p50", "p50 [ms]", "p99 [ms]", "crash",
                   "recov", "t_reloc [s]", "events", "crit", "boxes"}};
  std::uint64_t total_boxes = 0;
  for (const ScenarioCell& cell : doc.cells) {
    total_boxes += cell.blackboxes.size();
    table.add_row({cell.localizer, cell.scenario.fault,
                   TextTable::num(cell.scenario.severity, 2),
                   TextTable::num(cell.result.lateral_mean_cm, 2),
                   TextTable::num(cell.result.lateral_std_cm, 2),
                   TextTable::num(cell.result.scan_alignment, 1),
                   TextTable::num(cell.ess_fraction_p50, 3),
                   TextTable::num(cell.result.update_p50_ms, 2),
                   TextTable::num(cell.result.update_p99_ms, 2),
                   cell.result.crashed ? "yes" : "no",
                   cell.recovery_success ? "yes" : "no",
                   cell.recoveries > 0
                       ? TextTable::num(cell.time_to_reloc_mean_s, 2)
                       : std::string{"-"},
                   std::to_string(cell.events_total),
                   std::to_string(cell.events_critical),
                   std::to_string(cell.blackboxes.size())});
  }
  std::cout << "\n" << table.render();
  if (!config.blackbox_dir.empty()) {
    std::cout << "flight recorder: " << total_boxes
              << " black box(es) under " << config.blackbox_dir << "/, grid "
              << TextTable::num(grid_wall_s, 2) << " s\n";
  }

  // ---- Recorder A/B (opt-in) --------------------------------------------
  // SRL_RECORDER_AB=1 re-runs the grid with the recorder off: the metrics
  // must be bitwise identical (the recorder is instrumentation, never
  // physics) and the wall-time delta is the recorder's overhead, reported
  // in provenance. A metric mismatch is a hard failure.
  double baseline_wall_s = 0.0;
  double recorder_overhead_pct = 0.0;
  if (run_ab) {
    ScenarioMatrixConfig off = config;
    off.blackbox_dir.clear();
    const ScenarioMatrix bare{off};
    const auto ab_t0 = bench_clock::now();
    const std::vector<ScenarioCell> off_cells = bare.run(track);
    baseline_wall_s =
        std::chrono::duration<double>(bench_clock::now() - ab_t0).count();
    if (baseline_wall_s > 0.0) {
      recorder_overhead_pct = 100.0 * (grid_wall_s / baseline_wall_s - 1.0);
    }
    std::size_t mismatches = 0;
    for (std::size_t i = 0;
         i < doc.cells.size() && i < off_cells.size(); ++i) {
      const ExperimentResult& a = doc.cells[i].result;
      const ExperimentResult& b = off_cells[i].result;
      if (a.lateral_mean_cm != b.lateral_mean_cm ||
          a.lateral_std_cm != b.lateral_std_cm ||
          a.scan_alignment != b.scan_alignment || a.crashed != b.crashed) {
        ++mismatches;
        std::cerr << "RECORDER A/B MISMATCH: " << doc.cells[i].localizer
                  << " " << doc.cells[i].scenario.label()
                  << " differs with the recorder attached\n";
      }
    }
    std::cout << "recorder A/B: on " << TextTable::num(grid_wall_s, 2)
              << " s, off " << TextTable::num(baseline_wall_s, 2)
              << " s, overhead " << TextTable::num(recorder_overhead_pct, 2)
              << " %\n";
    if (mismatches > 0) {
      std::cerr << "recorder is NOT a bitwise no-op (" << mismatches
                << " cell(s) differ)\n";
      return 1;
    }
  }

  // ---- Headline ---------------------------------------------------------
  doc.has_headline = compute_headline(doc.cells, "odom_slip_ramp", doc.headline);
  if (doc.has_headline) {
    auto describe = [](double baseline_cm, double faulted_cm,
                       double degradation, bool crashed) {
      if (crashed) return TextTable::num(baseline_cm, 2) + " cm -> CRASHED";
      return TextTable::num(baseline_cm, 2) + " -> " +
             TextTable::num(faulted_cm, 2) + " cm (x" +
             TextTable::num(degradation, 2) + ")";
    };
    std::cout << "\nheadline (odom_slip_ramp @ "
              << TextTable::num(doc.headline.severity, 2) << "): SynPF "
              << describe(doc.headline.synpf_baseline_cm,
                          doc.headline.synpf_faulted_cm,
                          doc.headline.synpf_degradation,
                          doc.headline.synpf_crashed)
              << ", CartoLite "
              << describe(doc.headline.carto_baseline_cm,
                          doc.headline.carto_faulted_cm,
                          doc.headline.carto_degradation,
                          doc.headline.carto_crashed)
              << "\n";
    std::cout << (doc.headline.synpf_flat()
                      ? "paper shape reproduced: SynPF degrades less than "
                        "the Cartographer-style baseline under slip\n"
                      : "WARNING: paper shape NOT reproduced in this grid\n");
  }

  // ---- Governor table + graceful-degradation headline -------------------
  // Governed cells carry the PR-10 accounting block; print it as its own
  // table (the main grid is already wide) and pin the headline claim:
  // under full compute pressure the shedding governor stays deadline-clean
  // while the budget enforcer starves.
  {
    TextTable gtable{{"localizer", "fault", "sev", "budget", "updates",
                      "miss", "shed B", "shed P", "skip R", "resize",
                      "parts mu", "parts min", "beams mu", "cost p99"}};
    int governed_cells = 0;
    for (const ScenarioCell& cell : doc.cells) {
      if (!cell.governed) continue;
      ++governed_cells;
      gtable.add_row({cell.localizer, cell.scenario.fault,
                      TextTable::num(cell.scenario.severity, 2),
                      TextTable::num(cell.budget_ms, 1),
                      std::to_string(cell.governor_updates),
                      std::to_string(cell.deadline_misses),
                      std::to_string(cell.shed_beam_updates),
                      std::to_string(cell.shed_particle_updates),
                      std::to_string(cell.skipped_resamples),
                      std::to_string(cell.governor_resizes),
                      TextTable::num(cell.governor_mean_particles, 0),
                      std::to_string(cell.governor_min_particles),
                      TextTable::num(cell.governor_mean_beams, 1),
                      TextTable::num(cell.governor_cost_p99, 0)});
    }
    if (governed_cells > 0) {
      std::cout << "\ngovernor accounting (" << governed_cells
                << " governed cells, budget "
                << TextTable::num(config.budget_ms, 1) << " ms = "
                << TextTable::num(
                       config.budget_ms * governor::kDefaultUnitsPerMs, 0)
                << " work units):\n"
                << gtable.render();
    }

    doc.has_governor_headline =
        compute_governor_headline(doc.cells, doc.governor_headline);
    if (doc.has_governor_headline) {
      const GovernorHeadline& gh = doc.governor_headline;
      std::cout << "graceful degradation (compute_pressure @ "
                << TextTable::num(gh.severity, 2) << ", budget "
                << TextTable::num(gh.budget_ms, 1) << " ms): governed "
                << (gh.governed_crashed
                        ? std::string{"CRASHED"}
                        : TextTable::num(gh.governed_baseline_cm, 2) +
                              " -> " +
                              TextTable::num(gh.governed_pressured_cm, 2) +
                              " cm (x" +
                              TextTable::num(gh.governed_degradation, 2) +
                              ", " + std::to_string(gh.governed_misses) +
                              " misses, " +
                              std::to_string(gh.governed_shed_updates) +
                              " shed)")
                << "; enforcer "
                << (gh.enforcer_crashed
                        ? std::string{"CRASHED"}
                        : TextTable::num(gh.enforcer_pressured_cm, 2) +
                              " cm (" + std::to_string(gh.enforcer_misses) +
                              " missed deadlines)")
                << "\n";
      std::cout << (gh.graceful()
                        ? "graceful: governed stack stayed deadline-clean "
                          "where plain enforcement starved\n"
                        : "WARNING: graceful-degradation headline NOT "
                          "reproduced in this grid\n");
    }
  }

  // ---- Kidnap recovery headline -----------------------------------------
  // The PR-5 claim: a bare SynPF stays lost after a kidnap while the
  // supervised stack relocalizes and finishes the run.
  {
    double kidnap_sev = 0.0;
    for (const ScenarioCell& cell : doc.cells) {
      if (cell.scenario.fault == "kidnap") {
        kidnap_sev = std::max(kidnap_sev, cell.scenario.severity);
      }
    }
    const ScenarioCell* bare = nullptr;
    const ScenarioCell* supervised = nullptr;
    for (const ScenarioCell& cell : doc.cells) {
      if (cell.scenario.fault != "kidnap" ||
          cell.scenario.severity != kidnap_sev) {
        continue;
      }
      if (cell.localizer == "SynPF") bare = &cell;
      if (cell.localizer == "SynPF+Recovery") supervised = &cell;
    }
    if (bare != nullptr && supervised != nullptr) {
      auto describe = [](const ScenarioCell& cell) {
        if (cell.result.crashed) return std::string{"CRASHED"};
        if (!cell.recovery_success) return std::string{"stayed diverged"};
        return "relocalized in " +
               TextTable::num(cell.time_to_reloc_mean_s, 2) + " s (post " +
               TextTable::num(cell.result.post_recovery_lateral_cm, 2) +
               " cm)";
      };
      std::cout << "kidnap recovery (@ " << TextTable::num(kidnap_sev, 2)
                << "): SynPF " << describe(*bare) << ", SynPF+Recovery "
                << describe(*supervised) << "\n";
    }
  }

  // ---- Recovery summary CSV ---------------------------------------------
  // Always lands in the gitignored out/ directory, whatever directory the
  // JSON goes to — a sidecar CSV next to a committed baseline (or at the
  // repo root) is exactly the stale-artifact litter out/ exists to prevent.
  {
    std::string base = std::filesystem::path{out_file}.stem().string();
    if (base.empty()) base = "BENCH_robustness";
    const std::string csv_file = out_path(base + "_recovery.csv");
    std::ofstream csv{csv_file};
    csv << "localizer,fault,severity,kidnaps,divergence_episodes,recoveries,"
           "recovery_success,time_to_reloc_mean_s,time_to_reloc_max_s,"
           "post_divergence_lateral_cm,reinjections,global_relocs,"
           "recovery_transitions\n";
    for (const ScenarioCell& cell : doc.cells) {
      csv << cell.localizer << ',' << cell.scenario.fault << ','
          << cell.scenario.severity << ',' << cell.kidnaps << ','
          << cell.divergence_episodes << ',' << cell.recoveries << ','
          << (cell.recovery_success ? 1 : 0) << ','
          << cell.time_to_reloc_mean_s << ',' << cell.time_to_reloc_max_s
          << ',' << cell.post_divergence_lateral_cm << ','
          << cell.reinjections << ',' << cell.global_relocs << ','
          << cell.recovery_transitions << '\n';
    }
    if (csv) std::cout << "wrote " << csv_file << "\n";
  }

  // ---- Serialize --------------------------------------------------------
  doc.provenance.compiler = compiler_id();
#ifdef NDEBUG
  doc.provenance.build = "release";
#else
  doc.provenance.build = "debug";
#endif
  const char* sha = std::getenv("SRL_GIT_SHA");
  doc.provenance.git_sha = sha != nullptr ? sha : "";
  doc.provenance.seed = config.seed;
  doc.provenance.fault_seed = config.fault_seed;
  doc.provenance.laps = config.experiment.laps;
  doc.provenance.n_particles = config.n_particles;
  doc.provenance.matrix_threads = config.matrix_threads;
  doc.provenance.fast_mode = fast_mode();
  doc.provenance.recorder = !config.blackbox_dir.empty();
  doc.provenance.recorder_wall_s = grid_wall_s;
  doc.provenance.baseline_wall_s = baseline_wall_s;
  doc.provenance.recorder_overhead_pct = recorder_overhead_pct;

  if (!write_bench_json(out_file, doc)) {
    std::cerr << "failed to write " << out_file << "\n";
    return 1;
  }
  std::cout << "wrote " << out_file << "\n";
  return 0;
}
