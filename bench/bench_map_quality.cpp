/// \file bench_map_quality.cpp
/// \brief Map-quality sensitivity (DESIGN.md experiment A4, an extension
/// beyond the paper): both localizers race against progressively degraded
/// localization maps (synthetic SLAM-map raggedness and warp from
/// gridmap/map_degrade.hpp) while the LiDAR observes the true world.
///
/// This probes an architectural difference: the beam-model particle filter
/// scores exact expected ranges (feels every cell of map error), while the
/// likelihood-field matcher blurs over raggedness by construction.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "eval/table.hpp"
#include "gridmap/map_degrade.hpp"

int main() {
  using namespace srl;
  using namespace srl::benchutil;

  const int laps = bench_laps(2);
  const Track track = TrackGenerator::test_track();
  const LidarConfig lidar{};

  struct Level {
    std::string name;
    double erode_dilate;
    double warp;
  };
  std::vector<Level> levels = {{"perfect", 0.0, 0.0},
                               {"light", 0.08, 0.01},
                               {"medium", 0.15, 0.02},
                               {"heavy", 0.30, 0.035}};
  if (fast_mode()) levels = {{"perfect", 0.0, 0.0}, {"medium", 0.15, 0.02}};

  std::cout << "bench_map_quality (" << laps
            << " laps per cell, nominal grip)\n";

  TextTable table{{"map", "Carto err [cm]", "SynPF err [cm]",
                   "Carto RMSE [cm]", "SynPF RMSE [cm]", "Carto align",
                   "SynPF align"}};
  CsvWriter csv{out_path("map_quality.csv")};
  csv.write_header({"level", "erode_dilate", "warp", "carto_err_cm",
                    "synpf_err_cm", "carto_rmse_cm", "synpf_rmse_cm"});

  for (const Level& level : levels) {
    MapDegradeParams params;
    params.erode_prob = level.erode_dilate;
    params.dilate_prob = level.erode_dilate;
    params.warp_amplitude = level.warp;
    Rng rng{99};
    auto map = std::make_shared<const OccupancyGrid>(
        level.erode_dilate > 0.0 || level.warp > 0.0
            ? degrade_map(track.grid, rng, params)
            : track.grid);

    auto carto = make_carto(map, lidar);
    auto synpf = make_synpf(map, lidar);
    std::cout << "  " << level.name << " ..." << std::flush;
    const ExperimentResult rc = run_cell(track, *carto, 0.76, laps);
    const ExperimentResult rs = run_cell(track, *synpf, 0.76, laps);
    std::cout << " done\n";

    table.add_row({level.name, TextTable::num(rc.lateral_mean_cm, 2),
                   TextTable::num(rs.lateral_mean_cm, 2),
                   TextTable::num(rc.pose_rmse_m * 100.0, 2),
                   TextTable::num(rs.pose_rmse_m * 100.0, 2),
                   TextTable::num(rc.scan_alignment, 1),
                   TextTable::num(rs.scan_alignment, 1)});
    csv.write_row(std::vector<std::string>{
        level.name, TextTable::num(level.erode_dilate, 2),
        TextTable::num(level.warp, 3), TextTable::num(rc.lateral_mean_cm, 3),
        TextTable::num(rs.lateral_mean_cm, 3),
        TextTable::num(rc.pose_rmse_m * 100.0, 3),
        TextTable::num(rs.pose_rmse_m * 100.0, 3)});
  }
  std::cout << "\n" << table.render();
  std::cout << "\nwrote out/map_quality.csv\n";
  return 0;
}
