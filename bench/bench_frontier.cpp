/// \file bench_frontier.cpp
/// \brief The robustness-frontier search (DESIGN.md §14): for every
/// {localizer × fault-axis × track-class} combination, bracket-and-bisect
/// severity to the first unrecovered divergence and serialize the measured
/// failure boundary to the machine-readable `BENCH_frontier.json` that
/// `tools/bench_compare --frontier` gates CI on.
///
/// This is the paper's headline restated as a *boundary* instead of a
/// sampled grid: SynPF's slip-axis breaking severity strictly exceeds
/// CartoLite's (often censored — no failure inside the modeled range at
/// all), each stated with its final bisection bracket.
///
/// Usage: bench_frontier [output.json]
///   SRL_FAST=1          smoke budget (2 localizers x 2 axes, 3 bisections)
///   SRL_GIT_SHA         recorded into provenance when set
///   SRL_BLACKBOX_DIR=d  black-box artifact directory for frontier-defining
///                       failures (default "blackbox"; "" = recorder off)

#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "eval/benchmark_json.hpp"
#include "eval/frontier/frontier_json.hpp"
#include "eval/frontier/frontier_search.hpp"
#include "eval/table.hpp"

int main(int argc, char** argv) {
  using namespace srl;
  using namespace srl::benchutil;
  using namespace srl::frontier;

  const std::string out_file =
      argc > 1 ? argv[1] : out_path("BENCH_frontier.json");

  FrontierSearchConfig config;
  if (fast_mode()) {
    config = FrontierSearchConfig::smoke();
  } else {
    for (int a = 0; a < static_cast<int>(frontier_axes().size()); ++a) {
      config.axes.push_back(a);
    }
    config.track_classes = {0, 1, 2};
    config.bisect_iterations = 5;  // bracket width 1/32 severity
    config.experiment.laps = 2;
    config.experiment.max_sim_time = 90.0;
  }
  const char* bb_dir = std::getenv("SRL_BLACKBOX_DIR");
  config.blackbox_dir = bb_dir != nullptr ? bb_dir : "blackbox";

  const int n_axes = config.axes.empty()
                         ? static_cast<int>(frontier_axes().size())
                         : static_cast<int>(config.axes.size());
  std::cout << "bench_frontier: " << config.localizers.size()
            << " localizers x " << n_axes << " axes x "
            << config.track_classes.size() << " track classes, "
            << config.bisect_iterations << " bisections"
            << (fast_mode() ? " (smoke budget)" : "")
            << (config.blackbox_dir.empty()
                    ? " [recorder off]"
                    : " [defining failures -> " + config.blackbox_dir + "]")
            << "\n";

  FrontierDocument doc;
  doc.result = run_frontier_search(config);

  TextTable table{{"localizer", "axis", "class", "frontier", "bracket",
                   "probes", "max lat [cm]", "boxes"}};
  for (const FrontierPoint& point : doc.result.points) {
    std::string frontier;
    if (point.censored) {
      frontier = "> 1.00 (censored)";
    } else if (point.degenerate) {
      frontier = "0.00 (degenerate)";
    } else {
      frontier = TextTable::num(point.breaking_severity, 4);
    }
    std::string bracket{"-"};
    if (!point.censored) {
      bracket = "[";
      bracket += TextTable::num(point.bracket_lo, 4);
      bracket += ", ";
      bracket += TextTable::num(point.bracket_hi, 4);
      bracket += "]";
    }
    double max_lat = 0.0;
    for (const FrontierEvaluation& eval : point.evaluations) {
      if (!eval.crashed) max_lat = std::max(max_lat, eval.lateral_mean_cm);
    }
    table.add_row({point.localizer, point.axis, point.track_class, frontier,
                   bracket, std::to_string(point.evaluations.size()),
                   TextTable::num(max_lat, 2),
                   std::to_string(point.blackboxes.size())});
  }
  std::cout << "\n" << table.render();

  doc.has_headline = compute_frontier_headline(
      doc.result, "odom_slip_ramp", frontier_track_classes()[0], doc.headline);
  if (doc.has_headline) {
    auto describe = [](double breaking, double width, bool censored) {
      if (censored) return std::string{"censored (no failure <= 1.0)"};
      return TextTable::num(breaking, 4) + " +- " + TextTable::num(width, 4);
    };
    std::cout << "\nfrontier headline (odom_slip_ramp, "
              << doc.headline.track_class << " class): SynPF breaks at "
              << describe(doc.headline.synpf_breaking,
                          doc.headline.synpf_bracket_width,
                          doc.headline.synpf_censored)
              << ", CartoLite at "
              << describe(doc.headline.carto_breaking,
                          doc.headline.carto_bracket_width,
                          doc.headline.carto_censored)
              << "\n";
    std::cout << (doc.headline.synpf_exceeds()
                      ? "paper shape reproduced: SynPF's slip frontier "
                        "strictly exceeds CartoLite's\n"
                      : "WARNING: frontier headline NOT reproduced\n");
  }

  doc.provenance.compiler = compiler_id();
#ifdef NDEBUG
  doc.provenance.build = "release";
#else
  doc.provenance.build = "debug";
#endif
  const char* sha = std::getenv("SRL_GIT_SHA");
  doc.provenance.git_sha = sha != nullptr ? sha : "";
  doc.provenance.fast_mode = fast_mode();

  if (!write_frontier_json(out_file, doc)) {
    std::cerr << "FAILED to write " << out_file << "\n";
    return 1;
  }
  std::cout << "wrote " << out_file << "\n";
  return 0;
}
