/// \file bench_budget_sweep.cpp
/// \brief Budget sweep (DESIGN.md experiment A8): how the compute governor
/// spends a shrinking per-update latency budget. Each budget point races the
/// governed SynPF stack ("SynPF+Governor"), its budget-*enforcer* twin
/// ("SynPF+Budget" — same budget, fixed workload, over-budget updates are
/// dropped) and the knobless CartoLite scan matcher under the same enforcer
/// ("CartoLite+Budget") through the scenario matrix, clean and under a
/// sustained `compute_pressure` envelope.
///
/// The table makes the ladder visible: as the budget tightens the governed
/// cloud first decimates beams, then clamps particles toward the floor, then
/// sheds resamples — lateral error grows smoothly — while the enforcer's miss
/// column explodes and CartoLite (nothing to shed) falls off a cliff the
/// moment its nominal cost no longer fits. All workload columns are virtual
/// work units (src/governor), so the table is bitwise reproducible; only the
/// accuracy columns depend on what the degraded filter actually estimates.
///
/// Usage: bench_budget_sweep [out.csv]
///   SRL_FAST=1     two budget points, short trace (CI smoke)
///   SRL_PRESSURE   compute-pressure severity for the faulted cells (0.8)

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "eval/scenario_matrix.hpp"
#include "eval/table.hpp"
#include "gridmap/track_generator.hpp"

int main(int argc, char** argv) {
  using namespace srl;
  using namespace srl::benchutil;

  const char* pressure_env = std::getenv("SRL_PRESSURE");
  const double pressure =
      pressure_env != nullptr ? std::atof(pressure_env) : 0.8;

  std::vector<double> budgets = {0.25, 0.5, 1.0, 2.0, 4.0};
  if (fast_mode()) budgets = {0.5, 2.0};

  const Track track = TrackGenerator::test_track();

  std::cout << "bench_budget_sweep (A8): governed vs. enforced workload per "
               "declared budget, compute_pressure @ "
            << TextTable::num(pressure, 2) << "\n";

  TextTable table{{"budget [ms]", "localizer", "fault", "Err mu [cm]",
                   "parts mu", "beams mu", "miss", "shed B", "shed P",
                   "skip R", "cost p99", "crashed"}};
  CsvWriter csv{argc > 1 ? argv[1] : out_path("budget_sweep.csv")};
  csv.write_header({"budget_ms", "localizer", "fault", "severity",
                    "lateral_cm", "mean_particles", "mean_beams",
                    "deadline_misses", "shed_beam_updates",
                    "shed_particle_updates", "skipped_resamples",
                    "cost_units_p99", "crashed"});

  for (const double budget : budgets) {
    ScenarioMatrixConfig config;
    config.localizers = {"SynPF+Governor", "SynPF+Budget", "CartoLite+Budget"};
    config.scenarios = {{"none", 0.0}, {"compute_pressure", pressure}};
    config.experiment.laps = 1;
    config.experiment.max_sim_time = fast_mode() ? 30.0 : 60.0;
    config.n_particles = 800;
    config.budget_ms = budget;

    std::cout << "  budget " << TextTable::num(budget, 2) << " ms ..."
              << std::flush;
    const std::vector<ScenarioCell> cells = ScenarioMatrix{config}.run(track);
    std::cout << " done\n";

    for (const ScenarioCell& cell : cells) {
      table.add_row({TextTable::num(budget, 2), cell.localizer,
                     cell.scenario.label(),
                     TextTable::num(cell.result.lateral_mean_cm, 2),
                     TextTable::num(cell.governor_mean_particles, 0),
                     TextTable::num(cell.governor_mean_beams, 1),
                     std::to_string(cell.deadline_misses),
                     std::to_string(cell.shed_beam_updates),
                     std::to_string(cell.shed_particle_updates),
                     std::to_string(cell.skipped_resamples),
                     TextTable::num(cell.governor_cost_p99, 0),
                     cell.result.crashed ? "yes" : "no"});
      csv.write_row({TextTable::num(budget, 4), cell.localizer,
                     cell.scenario.fault,
                     TextTable::num(cell.scenario.severity, 4),
                     TextTable::num(cell.result.lateral_mean_cm, 4),
                     TextTable::num(cell.governor_mean_particles, 2),
                     TextTable::num(cell.governor_mean_beams, 2),
                     std::to_string(cell.deadline_misses),
                     std::to_string(cell.shed_beam_updates),
                     std::to_string(cell.shed_particle_updates),
                     std::to_string(cell.skipped_resamples),
                     TextTable::num(cell.governor_cost_p99, 0),
                     cell.result.crashed ? "1" : "0"});
    }
  }

  std::cout << "\n" << table.render();
  std::cout << "\nexpected shape: the governed column degrades smoothly "
               "(beams -> particles -> resamples) as the budget tightens; "
               "the enforcer twin accumulates deadline misses at the same "
               "budgets, and the knobless CartoLite enforcer dies outright "
               "once its nominal cost stops fitting the budget\n"
               "wrote "
            << (argc > 1 ? argv[1] : out_path("budget_sweep.csv")) << "\n";
  return 0;
}
