/// \file bench_slip_sweep.cpp
/// \brief Robustness crossover sweep (DESIGN.md experiment A2), extending
/// the paper's two-point HQ/LQ comparison (Sec. IV: "determine a priori ...
/// which kind of localization algorithm would be most suited") to a grip
/// continuum: lateral error and scan alignment for both localizers as the
/// tire grip mu degrades from nominal (0.76) toward heavily taped (0.50).
///
/// The reproduced shape: Cartographer wins (or ties) at high grip and
/// degrades as slip grows, while SynPF stays nearly flat — the curves
/// cross somewhere below nominal grip.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "eval/table.hpp"

int main() {
  using namespace srl;
  using namespace srl::benchutil;

  const int laps = bench_laps(2);
  const Track track = TrackGenerator::test_track();
  auto map = std::make_shared<const OccupancyGrid>(track.grid);
  const LidarConfig lidar{};

  std::vector<double> mus = {0.76, 0.68, 0.62, 0.55, 0.50};
  if (fast_mode()) mus = {0.76, 0.55};

  std::cout << "bench_slip_sweep (" << laps << " laps per cell)\n";

  TextTable table{{"mu", "Carto err [cm]", "SynPF err [cm]",
                   "Carto align [%]", "SynPF align [%]", "Carto drift",
                   "winner"}};
  CsvWriter csv{out_path("slip_sweep.csv")};
  csv.write_header({"mu", "carto_err_cm", "synpf_err_cm", "carto_align",
                    "synpf_align", "drift_m_per_lap", "carto_crashed",
                    "synpf_crashed"});

  double crossover_mu = -1.0;
  bool prev_synpf_wins = false;
  bool first = true;
  for (const double mu : mus) {
    auto carto = make_carto(map, lidar);
    auto synpf = make_synpf(map, lidar);
    std::cout << "  mu=" << mu << " ..." << std::flush;
    const ExperimentResult rc = run_cell(track, *carto, mu, laps);
    const ExperimentResult rs = run_cell(track, *synpf, mu, laps);
    std::cout << " done\n";

    const bool synpf_wins = rs.lateral_mean_cm < rc.lateral_mean_cm;
    if (!first && synpf_wins && !prev_synpf_wins) crossover_mu = mu;
    prev_synpf_wins = synpf_wins;
    first = false;

    table.add_row({TextTable::num(mu, 2),
                   TextTable::num(rc.lateral_mean_cm, 2),
                   TextTable::num(rs.lateral_mean_cm, 2),
                   TextTable::num(rc.scan_alignment, 1),
                   TextTable::num(rs.scan_alignment, 1),
                   TextTable::num(rc.odom_drift_m_per_lap, 2),
                   synpf_wins ? "SynPF" : "Cartographer"});
    csv.write_row(std::vector<double>{
        mu, rc.lateral_mean_cm, rs.lateral_mean_cm, rc.scan_alignment,
        rs.scan_alignment, rc.odom_drift_m_per_lap,
        rc.crashed ? 1.0 : 0.0, rs.crashed ? 1.0 : 0.0});
  }
  std::cout << "\n" << table.render();
  if (crossover_mu > 0.0) {
    std::cout << "\ncrossover: SynPF takes over below mu ~ "
              << TextTable::num(crossover_mu, 2) << "\n";
  }
  std::cout << "paper: Cartographer better at nominal grip, SynPF at "
               "reduced grip (taped tires)\nwrote out/slip_sweep.csv\n";
  return 0;
}
