/// \file bench_latency_rangelib.cpp
/// \brief Reproduces the paper's latency evaluation (the 1.25 ms sensor-
/// update claim, Sec. I/IV) and the rangelibc method comparison (Sec. II):
///
///  - single-ray range queries per backend (Bresenham / RayMarching /
///    CDDT / LUT) on the Table-I test track;
///  - one full SynPF measurement update (predict + correct, 60 beams per
///    particle) per backend — the number the paper reports as "scan
///    matching computation time" on the GPU-less NUC;
///  - acceleration-structure build time (the LUT's precompute trade-off).
///
/// Run via google-benchmark; absolute numbers are machine-dependent, the
/// *ordering* (LUT/CDDT are query-fast, Bresenham is exact but slow) is the
/// reproduced result.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "core/particle_filter.hpp"
#include "core/synpf.hpp"
#include "eval/table.hpp"
#include "gridmap/track_generator.hpp"
#include "motion/tum_model.hpp"
#include "range/range_method.hpp"
#include "range/ray_marching.hpp"
#include "sensor/lidar_sim.hpp"
#include "sensor/scanline_layout.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace srl;

const Track& track() {
  static const Track t = TrackGenerator::test_track();
  return t;
}

std::shared_ptr<const OccupancyGrid> map_ptr() {
  static auto map = std::make_shared<const OccupancyGrid>(track().grid);
  return map;
}

const std::unique_ptr<RangeMethod>& method(RangeMethodKind kind) {
  static std::unique_ptr<RangeMethod> methods[4];
  auto& slot = methods[static_cast<int>(kind)];
  if (!slot) slot = make_range_method(kind, map_ptr(), RangeMethodOptions{});
  return slot;
}

/// Pre-generated query poses on the corridor.
const std::vector<Pose2>& query_poses() {
  static const std::vector<Pose2> poses = [] {
    std::vector<Pose2> out;
    Rng rng{7};
    const auto& cl = track().centerline;
    while (out.size() < 4096) {
      const Vec2 base = cl[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(cl.size()) - 1))];
      const Pose2 p{base.x + rng.gaussian(0.3), base.y + rng.gaussian(0.3),
                    rng.uniform(-kPi, kPi)};
      const GridIndex g = map_ptr()->world_to_grid({p.x, p.y});
      if (map_ptr()->in_bounds(g.ix, g.iy) &&
          !map_ptr()->blocks_ray(g.ix, g.iy)) {
        out.push_back(p);
      }
    }
    return out;
  }();
  return poses;
}

void BM_RangeQuery(benchmark::State& state) {
  const auto kind = static_cast<RangeMethodKind>(state.range(0));
  const RangeMethod& m = *method(kind);
  const auto& poses = query_poses();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.range(poses[i]));
    i = (i + 1) % poses.size();
  }
  state.SetLabel(m.name());
}
BENCHMARK(BM_RangeQuery)
    ->Arg(static_cast<int>(RangeMethodKind::kBresenham))
    ->Arg(static_cast<int>(RangeMethodKind::kRayMarching))
    ->Arg(static_cast<int>(RangeMethodKind::kCddt))
    ->Arg(static_cast<int>(RangeMethodKind::kLut));

/// One full SynPF measurement update: the paper's latency metric.
void BM_SensorUpdate(benchmark::State& state) {
  const auto kind = static_cast<RangeMethodKind>(state.range(0));
  const LidarConfig lidar;

  ParticleFilterConfig cfg;
  cfg.n_particles = static_cast<int>(state.range(1));
  std::shared_ptr<const RangeMethod> caster =
      make_range_method(kind, map_ptr(), RangeMethodOptions{});
  ParticleFilter pf{cfg,
                    caster,
                    std::make_shared<TumMotionModel>(),
                    BeamModel{},
                    lidar,
                    boxed_layout(lidar, 60, 3.0),
                    99};

  // A scan from the start pose.
  const auto& cl = track().centerline;
  const Pose2 start{cl[0].x, cl[0].y, 0.0};
  auto truth_caster =
      std::make_shared<RayMarching>(map_ptr(), lidar.max_range);
  LidarSim sim{lidar, truth_caster, LidarNoise{}};
  Rng rng{3};
  const LaserScan scan = sim.scan(start, 0.0, rng);
  pf.init_pose(start);

  OdometryDelta odom;
  odom.delta = Pose2{0.02, 0.0, 0.0};
  odom.v = 1.0;
  odom.dt = 0.02;
  for (auto _ : state) {
    pf.predict(odom);
    pf.correct(scan);
  }
  state.SetLabel(to_string(kind) + "/" +
                 std::to_string(cfg.n_particles) + "p");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfg.n_particles) * 60);
}
BENCHMARK(BM_SensorUpdate)
    ->Args({static_cast<int>(RangeMethodKind::kBresenham), 1500})
    ->Args({static_cast<int>(RangeMethodKind::kRayMarching), 1500})
    ->Args({static_cast<int>(RangeMethodKind::kCddt), 1500})
    ->Args({static_cast<int>(RangeMethodKind::kLut), 1500})
    ->Unit(benchmark::kMillisecond);

/// Acceleration-structure construction cost (the LUT's trade-off).
void BM_Build(benchmark::State& state) {
  const auto kind = static_cast<RangeMethodKind>(state.range(0));
  RangeMethodOptions opt;
  opt.lut_theta_bins = 90;
  opt.lut_stride = 2;  // keep the bench itself quick
  for (auto _ : state) {
    auto m = make_range_method(kind, map_ptr(), opt);
    benchmark::DoNotOptimize(m);
  }
  state.SetLabel(to_string(kind));
}
BENCHMARK(BM_Build)
    ->Arg(static_cast<int>(RangeMethodKind::kRayMarching))
    ->Arg(static_cast<int>(RangeMethodKind::kCddt))
    ->Arg(static_cast<int>(RangeMethodKind::kLut))
    ->Unit(benchmark::kMillisecond);

/// Percentile study: run repeated full sensor updates per backend with a
/// metrics registry attached and print the per-stage latency distribution
/// (predict / raycast / weight / resample + total) — the paper's 1.25 ms
/// claim as a p50/p95/p99 table instead of a single mean.
void run_percentile_study(int updates) {
  const LidarConfig lidar;
  const auto& cl = track().centerline;
  const Pose2 start{cl[0].x, cl[0].y, 0.0};
  auto truth_caster =
      std::make_shared<RayMarching>(map_ptr(), lidar.max_range);
  LidarSim sim{lidar, truth_caster, LidarNoise{}};

  std::cout << "Per-stage sensor-update latency, " << updates
            << " updates x 1500 particles x 60 beams per backend:\n";
  TextTable table{{"Backend", "Stage", "n", "mean [ms]", "p50 [ms]",
                   "p95 [ms]", "p99 [ms]", "max [ms]"}};
  for (const RangeMethodKind kind :
       {RangeMethodKind::kBresenham, RangeMethodKind::kRayMarching,
        RangeMethodKind::kCddt, RangeMethodKind::kLut}) {
    ParticleFilterConfig cfg;
    cfg.n_particles = 1500;
    std::shared_ptr<const RangeMethod> caster =
        make_range_method(kind, map_ptr(), RangeMethodOptions{});
    ParticleFilter pf{cfg,
                      caster,
                      std::make_shared<TumMotionModel>(),
                      BeamModel{},
                      lidar,
                      boxed_layout(lidar, 60, 3.0),
                      99};
    telemetry::MetricsRegistry metrics;
    pf.set_telemetry(telemetry::Sink{&metrics, nullptr});
    telemetry::Histogram& total = metrics.histogram("pf.update_ms");

    Rng rng{3};
    const LaserScan scan = sim.scan(start, 0.0, rng);
    pf.init_pose(start);
    OdometryDelta odom;
    odom.delta = Pose2{0.02, 0.0, 0.0};
    odom.v = 1.0;
    odom.dt = 0.02;
    for (int i = 0; i < updates; ++i) {
      Stopwatch watch;
      pf.predict(odom);
      pf.correct(scan);
      total.record(watch.elapsed_ms());
    }

    for (const char* stage : {"pf.predict_ms", "pf.raycast_ms",
                              "pf.weight_ms", "pf.resample_ms",
                              "pf.update_ms"}) {
      const telemetry::Histogram* h = metrics.find_histogram(stage);
      if (h == nullptr || h->count() == 0) continue;
      const telemetry::Histogram::Snapshot s = h->snapshot();
      table.add_row({to_string(kind), stage, std::to_string(s.count),
                     TextTable::num(s.mean, 3), TextTable::num(s.p50, 3),
                     TextTable::num(s.p95, 3), TextTable::num(s.p99, 3),
                     TextTable::num(s.max, 3)});
    }
  }
  std::cout << table.render() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const char* updates_env = std::getenv("SRL_PCTL_UPDATES");
  run_percentile_study(updates_env != nullptr ? std::atoi(updates_env) : 100);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
