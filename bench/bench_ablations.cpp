/// \file bench_ablations.cpp
/// \brief Design-choice ablations for SynPF (DESIGN.md experiment A1 plus
/// the motion-model ablation of A3):
///
///  1. **Scanline layout** (Sec. II): boxed vs uniform at equal beam count.
///     Reports (a) a geometric down-track information statistic — how far
///     ahead the selected beams see from a corridor pose — and (b) the
///     closed-loop localization accuracy of each layout.
///  2. **Motion model** (Sec. II / Fig. 1): the full SynPF (TUM model) vs
///     the same filter with the classical diff-drive model, under both
///     grip regimes. This isolates how much of SynPF's LQ robustness comes
///     from the speed-adaptive motion model.

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/stats.hpp"
#include "eval/table.hpp"
#include "range/ray_marching.hpp"
#include "sensor/scanline_layout.hpp"

int main() {
  using namespace srl;
  using namespace srl::benchutil;

  const int laps = bench_laps(3);
  const Track track = TrackGenerator::test_track();
  auto map = std::make_shared<const OccupancyGrid>(track.grid);
  const LidarConfig lidar{};

  std::cout << "bench_ablations (" << laps << " laps per cell)\n\n";

  // ---- 1a. Geometric down-track information of the layouts. ----
  {
    const RayMarching caster{map, lidar.max_range};
    const auto& cl = track.centerline;
    TextTable table{{"layout", "beams", "mean range [m]",
                     "beams >= 6 m [%]", "fwd cone +/-30deg [%]"}};
    CsvWriter csv{out_path("ablation_layout_info.csv")};
    csv.write_header({"layout", "beams", "mean_range", "far_frac",
                      "fwd_frac"});
    for (const bool boxed : {false, true}) {
      for (const int count : {30, 60}) {
        const std::vector<int> idx =
            boxed ? boxed_layout(lidar, count, 3.0)
                  : uniform_layout(lidar, count);
        RunningStats range_stats;
        int far = 0;
        int fwd = 0;
        int total = 0;
        for (std::size_t ci = 0; ci < cl.size(); ci += 10) {
          const std::size_t cn = (ci + 1) % cl.size();
          const double heading =
              std::atan2(cl[cn].y - cl[ci].y, cl[cn].x - cl[ci].x);
          for (const int b : idx) {
            const double a = heading + lidar.beam_angle(b);
            const float r = caster.range({cl[ci].x, cl[ci].y, a});
            range_stats.add(r);
            if (r >= 6.0F) ++far;
            if (std::abs(lidar.beam_angle(b)) <= deg2rad(30.0)) ++fwd;
            ++total;
          }
        }
        const std::string name = boxed ? "boxed" : "uniform";
        table.add_row(
            {name, std::to_string(idx.size()),
             TextTable::num(range_stats.mean(), 2),
             TextTable::num(100.0 * far / total, 1),
             TextTable::num(100.0 * fwd / total, 1)});
        csv.write_row(std::vector<std::string>{
            name, std::to_string(idx.size()),
            TextTable::num(range_stats.mean(), 3),
            TextTable::num(static_cast<double>(far) / total, 4),
            TextTable::num(static_cast<double>(fwd) / total, 4)});
      }
    }
    std::cout << "Down-track information (paper Sec. II: boxed layout points "
                 "further ahead):\n"
              << table.render() << "\n";
  }

  // ---- 1b + 2. Closed-loop ablation grid. ----
  TextTable table{{"variant", "odom", "Err mu [cm]", "PoseRMSE [cm]",
                   "Hdg RMSE [mrad]", "ScanAlign [%]", "crashed"}};
  CsvWriter csv{out_path("ablation_closed_loop.csv")};
  csv.write_header({"variant", "mu", "lateral_cm", "pose_rmse_cm",
                    "heading_mrad", "scan_align", "crashed"});

  struct Variant {
    std::string name;
    PfMotionKind motion;
    PfLayoutKind layout;
  };
  const Variant variants[] = {
      {"SynPF (tum+boxed)", PfMotionKind::kTum, PfLayoutKind::kBoxed},
      {"uniform layout", PfMotionKind::kTum, PfLayoutKind::kUniform},
      {"diff-drive model", PfMotionKind::kDiffDrive, PfLayoutKind::kBoxed},
      {"diff-drive+uniform", PfMotionKind::kDiffDrive,
       PfLayoutKind::kUniform},
  };
  for (const Variant& variant : variants) {
    for (const double mu : {0.76, 0.55}) {
      SynPfConfig cfg;
      cfg.motion = variant.motion;
      cfg.layout = variant.layout;
      auto pf = make_synpf(map, lidar, cfg);
      std::cout << "  running " << variant.name << " / mu=" << mu << " ..."
                << std::flush;
      const ExperimentResult r = run_cell(track, *pf, mu, laps);
      std::cout << " done\n";
      const std::string odom = mu > 0.7 ? "HQ" : "LQ";
      table.add_row({variant.name, odom,
                     TextTable::num(r.lateral_mean_cm, 2),
                     TextTable::num(r.pose_rmse_m * 100.0, 2),
                     TextTable::num(r.heading_rmse_rad * 1000.0, 1),
                     TextTable::num(r.scan_alignment, 1),
                     r.crashed ? "yes" : "no"});
      csv.write_row(std::vector<std::string>{
          variant.name, TextTable::num(mu, 2),
          TextTable::num(r.lateral_mean_cm, 3),
          TextTable::num(r.pose_rmse_m * 100.0, 3),
          TextTable::num(r.heading_rmse_rad * 1000.0, 2),
          TextTable::num(r.scan_alignment, 2), r.crashed ? "1" : "0"});
    }
  }
  std::cout << "\n" << table.render();
  std::cout << "\nwrote out/ablation_layout_info.csv, out/ablation_closed_loop.csv\n";
  return 0;
}
