/// \file bench_particle_sweep.cpp
/// \brief Particle-count ablation (DESIGN.md experiment A3): localization
/// accuracy and per-scan latency of SynPF as the particle count grows —
/// the accuracy/latency trade-off behind the paper's 1.25 ms operating
/// point. Runs under low-quality odometry (mu = 0.55), where the filter
/// must actually spend its particles on absorbing slip.
///
/// A second table sweeps the worker-lane count (DESIGN.md §9): one trace is
/// recorded once and replayed open-loop per (particles x threads) cell, so
/// every cell scores byte-identical sensor data and the speedup column
/// isolates the pool. Estimates are bitwise thread-count-invariant, so the
/// table only moves in the latency columns.
///
/// A third table measures per-stage sensor-update throughput
/// (beams*particles/sec for predict / raycast / weight / update) per SIMD
/// backend and lane count on the paper's default LUT pipeline, emitted as
/// a `srl.bench_throughput/1` JSON document (eval/throughput_json.hpp) —
/// the artifact the CI perf-smoke job gates against a committed baseline.
/// Every replay is fingerprinted (FNV over the estimate bits) and the run
/// hard-fails if any backend or lane count moves a bit: the throughput
/// table doubles as a scalar-vs-AVX2 determinism witness.
///
/// Usage: bench_particle_sweep [throughput.json]
///   SRL_THROUGHPUT_ONLY=1 skips the A3 + thread-scaling tables (CI).

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/simd.hpp"
#include "eval/dead_reckoning.hpp"
#include "eval/table.hpp"
#include "eval/throughput_json.hpp"
#include "eval/trace.hpp"
#include "telemetry/telemetry.hpp"

namespace {

double hist_mean(const srl::telemetry::MetricsRegistry& reg,
                 const char* name) {
  const srl::telemetry::Histogram* h = reg.find_histogram(name);
  return h != nullptr ? h->mean() : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace srl;
  using namespace srl::benchutil;

  const bool throughput_only = env_int("SRL_THROUGHPUT_ONLY", 0) != 0;
  const int laps = bench_laps(2);
  const Track track = TrackGenerator::test_track();
  auto map = std::make_shared<const OccupancyGrid>(track.grid);
  const LidarConfig lidar{};

  if (!throughput_only) {
    std::vector<int> counts = {250, 500, 1000, 2000, 4000};
    if (fast_mode()) counts = {500, 2000};

    std::cout << "bench_particle_sweep (" << laps
              << " laps per cell, mu = 0.55)\n";

    TextTable table{{"particles", "Err mu [cm]", "PoseRMSE [cm]",
                     "update [ms]", "load [%]", "crashed"}};
    CsvWriter csv{out_path("particle_sweep.csv")};
    csv.write_header({"particles", "lateral_cm", "pose_rmse_cm", "update_ms",
                      "load_percent", "crashed"});

    for (const int n : counts) {
      SynPfConfig cfg;
      cfg.filter.n_particles = n;
      auto pf = make_synpf(map, lidar, cfg);
      std::cout << "  n=" << n << " ..." << std::flush;
      const ExperimentResult r = run_cell(track, *pf, 0.55, laps);
      std::cout << " done\n";
      table.add_row({std::to_string(n), TextTable::num(r.lateral_mean_cm, 2),
                     TextTable::num(r.pose_rmse_m * 100.0, 2),
                     TextTable::num(r.mean_update_ms, 2),
                     TextTable::num(r.load_percent, 2),
                     r.crashed ? "yes" : "no"});
      csv.write_row(std::vector<double>{
          static_cast<double>(n), r.lateral_mean_cm, r.pose_rmse_m * 100.0,
          r.mean_update_ms, r.load_percent, r.crashed ? 1.0 : 0.0});
    }
    std::cout << "\n" << table.render();
    std::cout << "\nexpected shape: accuracy saturates while latency grows "
                 "linearly — the paper operates at the knee (~1-2 ms)\n"
                 "wrote out/particle_sweep.csv\n";
  }

  // One recorded trace feeds both the thread-scaling table and the
  // throughput table: every cell replays byte-identical sensor data.
  SensorTrace scaling_trace;
  std::uint64_t trace_seed = 0;
  {
    ExperimentConfig tcfg;
    tcfg.mu = 0.55;
    tcfg.laps = 1;
    tcfg.max_sim_time = fast_mode() ? 10.0 : 20.0;
    trace_seed = tcfg.seed;
    ExperimentRunner runner{track, tcfg};
    DeadReckoning driver;
    runner.run(driver, &scaling_trace);
  }

  // ---- Thread-scaling sweep (open-loop replay of one recorded trace) ----
  if (!throughput_only) {
    std::vector<int> scale_counts = {500, 1500, 4000};
    std::vector<int> thread_counts = {1, 2, 4, 8};
    if (fast_mode()) {
      scale_counts = {1500};
      thread_counts = {1, 4};
    }

    std::cout << "\nbench thread scaling (" << scaling_trace.scans().size()
              << "-scan replay per cell, one untimed warm-up pass each; "
                 "estimates are bitwise identical across the threads column "
                 "by construction)\n";

    TextTable scale_table{{"particles", "threads", "update p50 [ms]",
                           "predict [ms]", "raycast [ms]", "weight [ms]",
                           "speedup"}};
    CsvWriter scale_csv{out_path("particle_thread_scaling.csv")};
    scale_csv.write_header({"particles", "threads", "update_p50_ms",
                            "predict_ms", "raycast_ms", "weight_ms",
                            "speedup"});

    for (const int n : scale_counts) {
      double p50_serial = 0.0;
      for (const int threads : thread_counts) {
        SynPfConfig cfg;
        cfg.filter.n_particles = n;
        cfg.filter.n_threads = threads;
        auto pf = make_synpf(map, lidar, cfg);
        telemetry::Telemetry telemetry;
        const SensorTrace::ReplayResult r =
            replay_warmed(scaling_trace, *pf, telemetry.sink());
        if (threads == thread_counts.front()) p50_serial = r.p50_update_ms;
        const double speedup =
            r.p50_update_ms > 0.0 ? p50_serial / r.p50_update_ms : 0.0;
        scale_table.add_row(
            {std::to_string(n), std::to_string(threads),
             TextTable::num(r.p50_update_ms, 3),
             TextTable::num(hist_mean(telemetry.metrics, "pf.predict_ms"), 3),
             TextTable::num(hist_mean(telemetry.metrics, "pf.raycast_ms"), 3),
             TextTable::num(hist_mean(telemetry.metrics, "pf.weight_ms"), 3),
             TextTable::num(speedup, 2)});
        scale_csv.write_row(std::vector<double>{
            static_cast<double>(n), static_cast<double>(threads),
            r.p50_update_ms, hist_mean(telemetry.metrics, "pf.predict_ms"),
            hist_mean(telemetry.metrics, "pf.raycast_ms"),
            hist_mean(telemetry.metrics, "pf.weight_ms"), speedup});
      }
    }
    std::cout << "\n" << scale_table.render();
    std::cout << "\nexpected shape: raycast/weight shrink ~linearly with "
                 "threads until chunks get cache-small; predict follows; "
                 "resample (serial by design) bounds the asymptote\n"
                 "wrote out/particle_thread_scaling.csv\n";
  }

  // ---- Per-stage throughput per SIMD backend (srl.bench_throughput/1) ----
  // The paper-default pipeline (LUT range method, 60 scored beams): replay
  // the recorded trace per (backend x particles x threads) cell with one
  // untimed warm-up, read the per-stage histograms, and fingerprint the
  // estimates. All cells of one particle count must hash identically —
  // the SoA kernels promise bitwise-equal lanes on every backend and lane
  // count, and this run enforces it before any rate is reported.
  std::vector<int> tp_counts = {1500, 4000};
  std::vector<int> tp_threads = {1, 4, 8};
  if (fast_mode()) {
    tp_counts = {1500};
    tp_threads = {1, 4};
  }
  std::vector<simd::Backend> backends = {simd::Backend::kScalar};
  if (simd::cpu_has_avx2()) backends.push_back(simd::Backend::kAvx2);

  ThroughputDocument doc;
  doc.provenance.compiler = compiler_id();
#ifdef NDEBUG
  doc.provenance.build = "release";
#else
  doc.provenance.build = "debug";
#endif
  const char* sha = std::getenv("SRL_GIT_SHA");
  doc.provenance.git_sha = sha != nullptr ? sha : "";
  doc.provenance.seed = trace_seed;
  doc.provenance.laps = 1;
  doc.provenance.fast_mode = fast_mode();
  doc.simd_active = simd::name(simd::active());
  doc.avx2_available = simd::cpu_has_avx2();
  doc.n_scans = static_cast<int>(scaling_trace.scans().size());

  std::cout << "\nbench sensor-update throughput ("
            << scaling_trace.scans().size()
            << "-scan LUT replay per cell, backends:";
  for (const simd::Backend b : backends) std::cout << " " << simd::name(b);
  std::cout << ")\n";

  TextTable tp_table{{"simd", "particles", "threads", "stage", "mean [ms]",
                      "items/s"}};
  constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
  std::uint64_t doc_hash = kFnvOffset;
  bool hashes_ok = true;

  for (const int n : tp_counts) {
    std::uint64_t reference_hash = 0;
    bool have_reference = false;
    for (const simd::Backend backend : backends) {
      for (const int threads : tp_threads) {
        simd::force(backend);
        SynPfConfig cfg;  // paper defaults: kLut range method, 60 beams
        cfg.filter.n_particles = n;
        cfg.filter.n_threads = threads;
        SynPf pf{cfg, map, lidar};
        telemetry::Telemetry telemetry;
        const SensorTrace::ReplayResult r =
            replay_warmed(scaling_trace, pf, telemetry.sink());
        simd::reset();

        const std::uint64_t hash = estimates_hash(r.estimates);
        if (!have_reference) {
          reference_hash = hash;
          have_reference = true;
        } else if (hash != reference_hash) {
          std::fprintf(stderr,
                       "FAIL simd=%s n=%d t=%d: estimate hash %016llx "
                       "diverges from the cell's reference %016llx — "
                       "backends/lane counts are not bitwise identical\n",
                       simd::name(backend), n, threads,
                       static_cast<unsigned long long>(hash),
                       static_cast<unsigned long long>(reference_hash));
          hashes_ok = false;
        }
        for (std::size_t byte = 0; byte < sizeof(hash); ++byte) {
          doc_hash ^= (hash >> (8 * byte)) & 0xFFU;
          doc_hash *= kFnvPrime;
        }

        const double items =
            static_cast<double>(cfg.beams) * static_cast<double>(n);
        const auto add_stage = [&](const char* stage, double mean_ms) {
          ThroughputCell cell;
          cell.stage = stage;
          cell.simd = simd::name(backend);
          cell.particles = n;
          cell.threads = threads;
          cell.beams = cfg.beams;
          cell.mean_ms = mean_ms;
          cell.items_per_sec =
              mean_ms > 0.0 ? items / (mean_ms / 1000.0) : 0.0;
          cell.hash = hash;
          tp_table.add_row({cell.simd, std::to_string(n),
                            std::to_string(threads), stage,
                            TextTable::num(mean_ms, 4),
                            TextTable::num(cell.items_per_sec, 0)});
          doc.cells.push_back(std::move(cell));
        };
        add_stage("predict", hist_mean(telemetry.metrics, "pf.predict_ms"));
        add_stage("raycast", hist_mean(telemetry.metrics, "pf.raycast_ms"));
        add_stage("weight", hist_mean(telemetry.metrics, "pf.weight_ms"));
        add_stage("update", hist_mean(telemetry.metrics, "synpf.update_ms"));
      }
    }
  }
  doc.determinism_hash = doc_hash;
  std::cout << "\n" << tp_table.render();

  // Headline: whole-update speedup of the vector backend, per cell pair.
  for (const int n : tp_counts) {
    for (const int threads : tp_threads) {
      double scalar_ms = 0.0;
      double avx2_ms = 0.0;
      for (const ThroughputCell& cell : doc.cells) {
        if (cell.stage != "update" || cell.particles != n ||
            cell.threads != threads) {
          continue;
        }
        (cell.simd == "scalar" ? scalar_ms : avx2_ms) = cell.mean_ms;
      }
      if (scalar_ms > 0.0 && avx2_ms > 0.0) {
        std::printf("  update speedup avx2/scalar n=%d t=%d: %.2fx "
                    "(%.4f ms -> %.4f ms)\n",
                    n, threads, scalar_ms / avx2_ms, scalar_ms, avx2_ms);
      }
    }
  }

  const std::string json_path =
      argc > 1 ? argv[1] : out_path("BENCH_throughput.json");
  if (!write_throughput_json(json_path, doc)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::cout << "wrote " << json_path << " (" << kBenchThroughputSchema
            << ", determinism hash "
            << throughput_to_json(doc).find("determinism_hash")->as_string()
            << ")\n";

  if (!hashes_ok) {
    std::fprintf(stderr, "throughput determinism check FAILED — see above\n");
    return 1;
  }
  return 0;
}
