/// \file bench_particle_sweep.cpp
/// \brief Particle-count ablation (DESIGN.md experiment A3): localization
/// accuracy and per-scan latency of SynPF as the particle count grows —
/// the accuracy/latency trade-off behind the paper's 1.25 ms operating
/// point. Runs under low-quality odometry (mu = 0.55), where the filter
/// must actually spend its particles on absorbing slip.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "eval/table.hpp"

int main() {
  using namespace srl;
  using namespace srl::benchutil;

  const int laps = bench_laps(2);
  const Track track = TrackGenerator::test_track();
  auto map = std::make_shared<const OccupancyGrid>(track.grid);
  const LidarConfig lidar{};

  std::vector<int> counts = {250, 500, 1000, 2000, 4000};
  if (fast_mode()) counts = {500, 2000};

  std::cout << "bench_particle_sweep (" << laps
            << " laps per cell, mu = 0.55)\n";

  TextTable table{{"particles", "Err mu [cm]", "PoseRMSE [cm]",
                   "update [ms]", "load [%]", "crashed"}};
  CsvWriter csv{"particle_sweep.csv"};
  csv.write_header({"particles", "lateral_cm", "pose_rmse_cm", "update_ms",
                    "load_percent", "crashed"});

  for (const int n : counts) {
    SynPfConfig cfg;
    cfg.filter.n_particles = n;
    auto pf = make_synpf(map, lidar, cfg);
    std::cout << "  n=" << n << " ..." << std::flush;
    const ExperimentResult r = run_cell(track, *pf, 0.55, laps);
    std::cout << " done\n";
    table.add_row({std::to_string(n), TextTable::num(r.lateral_mean_cm, 2),
                   TextTable::num(r.pose_rmse_m * 100.0, 2),
                   TextTable::num(r.mean_update_ms, 2),
                   TextTable::num(r.load_percent, 2),
                   r.crashed ? "yes" : "no"});
    csv.write_row(std::vector<double>{
        static_cast<double>(n), r.lateral_mean_cm, r.pose_rmse_m * 100.0,
        r.mean_update_ms, r.load_percent, r.crashed ? 1.0 : 0.0});
  }
  std::cout << "\n" << table.render();
  std::cout << "\nexpected shape: accuracy saturates while latency grows "
               "linearly — the paper operates at the knee (~1-2 ms)\n"
               "wrote particle_sweep.csv\n";
  return 0;
}
