/// \file bench_particle_sweep.cpp
/// \brief Particle-count ablation (DESIGN.md experiment A3): localization
/// accuracy and per-scan latency of SynPF as the particle count grows —
/// the accuracy/latency trade-off behind the paper's 1.25 ms operating
/// point. Runs under low-quality odometry (mu = 0.55), where the filter
/// must actually spend its particles on absorbing slip.
///
/// A second table sweeps the worker-lane count (DESIGN.md §9): one trace is
/// recorded once and replayed open-loop per (particles x threads) cell, so
/// every cell scores byte-identical sensor data and the speedup column
/// isolates the pool. Estimates are bitwise thread-count-invariant, so the
/// table only moves in the latency columns.

#include <cstring>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "eval/dead_reckoning.hpp"
#include "eval/table.hpp"
#include "eval/trace.hpp"
#include "telemetry/telemetry.hpp"

int main() {
  using namespace srl;
  using namespace srl::benchutil;

  const int laps = bench_laps(2);
  const Track track = TrackGenerator::test_track();
  auto map = std::make_shared<const OccupancyGrid>(track.grid);
  const LidarConfig lidar{};

  std::vector<int> counts = {250, 500, 1000, 2000, 4000};
  if (fast_mode()) counts = {500, 2000};

  std::cout << "bench_particle_sweep (" << laps
            << " laps per cell, mu = 0.55)\n";

  TextTable table{{"particles", "Err mu [cm]", "PoseRMSE [cm]",
                   "update [ms]", "load [%]", "crashed"}};
  CsvWriter csv{out_path("particle_sweep.csv")};
  csv.write_header({"particles", "lateral_cm", "pose_rmse_cm", "update_ms",
                    "load_percent", "crashed"});

  for (const int n : counts) {
    SynPfConfig cfg;
    cfg.filter.n_particles = n;
    auto pf = make_synpf(map, lidar, cfg);
    std::cout << "  n=" << n << " ..." << std::flush;
    const ExperimentResult r = run_cell(track, *pf, 0.55, laps);
    std::cout << " done\n";
    table.add_row({std::to_string(n), TextTable::num(r.lateral_mean_cm, 2),
                   TextTable::num(r.pose_rmse_m * 100.0, 2),
                   TextTable::num(r.mean_update_ms, 2),
                   TextTable::num(r.load_percent, 2),
                   r.crashed ? "yes" : "no"});
    csv.write_row(std::vector<double>{
        static_cast<double>(n), r.lateral_mean_cm, r.pose_rmse_m * 100.0,
        r.mean_update_ms, r.load_percent, r.crashed ? 1.0 : 0.0});
  }
  std::cout << "\n" << table.render();
  std::cout << "\nexpected shape: accuracy saturates while latency grows "
               "linearly — the paper operates at the knee (~1-2 ms)\n"
               "wrote out/particle_sweep.csv\n";

  // ---- Thread-scaling sweep (open-loop replay of one recorded trace) ----
  std::vector<int> scale_counts = {500, 1500, 4000};
  std::vector<int> thread_counts = {1, 2, 4, 8};
  if (fast_mode()) {
    scale_counts = {1500};
    thread_counts = {1, 4};
  }

  SensorTrace scaling_trace;
  {
    ExperimentConfig tcfg;
    tcfg.mu = 0.55;
    tcfg.laps = 1;
    tcfg.max_sim_time = fast_mode() ? 10.0 : 20.0;
    ExperimentRunner runner{track, tcfg};
    DeadReckoning driver;
    runner.run(driver, &scaling_trace);
  }
  std::cout << "\nbench thread scaling (" << scaling_trace.scans().size()
            << "-scan replay per cell; estimates are bitwise identical "
               "across the threads column by construction)\n";

  TextTable scale_table{{"particles", "threads", "update p50 [ms]",
                         "predict [ms]", "raycast [ms]", "weight [ms]",
                         "speedup"}};
  CsvWriter scale_csv{out_path("particle_thread_scaling.csv")};
  scale_csv.write_header({"particles", "threads", "update_p50_ms",
                          "predict_ms", "raycast_ms", "weight_ms", "speedup"});

  const auto hist_mean = [](const telemetry::MetricsRegistry& reg,
                            const char* name) {
    const telemetry::Histogram* h = reg.find_histogram(name);
    return h != nullptr ? h->mean() : 0.0;
  };

  for (const int n : scale_counts) {
    double p50_serial = 0.0;
    for (const int threads : thread_counts) {
      SynPfConfig cfg;
      cfg.filter.n_particles = n;
      cfg.filter.n_threads = threads;
      auto pf = make_synpf(map, lidar, cfg);
      telemetry::Telemetry telemetry;
      const SensorTrace::ReplayResult r =
          scaling_trace.replay(*pf, telemetry.sink());
      if (threads == thread_counts.front()) p50_serial = r.p50_update_ms;
      const double speedup =
          r.p50_update_ms > 0.0 ? p50_serial / r.p50_update_ms : 0.0;
      scale_table.add_row(
          {std::to_string(n), std::to_string(threads),
           TextTable::num(r.p50_update_ms, 3),
           TextTable::num(hist_mean(telemetry.metrics, "pf.predict_ms"), 3),
           TextTable::num(hist_mean(telemetry.metrics, "pf.raycast_ms"), 3),
           TextTable::num(hist_mean(telemetry.metrics, "pf.weight_ms"), 3),
           TextTable::num(speedup, 2)});
      scale_csv.write_row(std::vector<double>{
          static_cast<double>(n), static_cast<double>(threads),
          r.p50_update_ms, hist_mean(telemetry.metrics, "pf.predict_ms"),
          hist_mean(telemetry.metrics, "pf.raycast_ms"),
          hist_mean(telemetry.metrics, "pf.weight_ms"), speedup});
    }
  }
  std::cout << "\n" << scale_table.render();
  std::cout << "\nexpected shape: raycast/weight shrink ~linearly with "
               "threads until chunks get cache-small; predict follows; "
               "resample (serial by design) bounds the asymptote\n"
               "wrote out/particle_thread_scaling.csv\n";
  return 0;
}
