/// \file bench_compare.cpp
/// \brief CI regression gate over two `BENCH_robustness.json` documents —
/// or, with `--frontier`, two `srl.frontier/1` robustness-frontier
/// artifacts (eval/frontier/frontier_json.hpp), or, with `--throughput`,
/// two `srl.bench_throughput/1` sensor-update throughput tables
/// (eval/throughput_json.hpp).
///
/// Diffs a candidate benchmark run against a committed baseline with the
/// threshold semantics of `eval/bench_compare.hpp` and maps the report onto
/// exit codes:
///
///   0  every gate passed
///   1  at least one regression (each printed as `cell: metric regressed
///      (baseline ..., candidate ..., limit ...)`)
///   2  usage error or unreadable/invalid JSON
///
/// Usage:
///   bench_compare <baseline.json> <candidate.json>
///       [--lat-tol <frac>]        lateral mu relative tolerance (0.10)
///       [--lat-slack-cm <cm>]     lateral mu absolute slack     (1.0)
///       [--p99-tol <frac>]        latency p99 relative tolerance (1.0)
///       [--p99-slack-ms <ms>]     latency p99 absolute slack     (2.0)
///       [--reloc-tol <frac>]      time-to-relocalize relative tol (0.5)
///       [--reloc-slack-s <s>]     time-to-relocalize absolute slack (0.5)
///       [--no-recovery-gate]      skip recovery-success / reloc gates
///       [--hash require|ignore]   fault-trace fingerprint gate (ignore)
///       [--allow-new-crashes]     tolerate crashes the baseline survived
///
///   bench_compare --frontier <baseline.json> <candidate.json>
///       [--sev-tol <sev>]   allowed breaking-severity drop per frontier
///                           point before it counts as a regression (0.0;
///                           censored points compare as severity 2.0)
///       [--exact]           determinism self-compare: additionally demand
///                           bitwise-identical brackets, probe sequences
///                           and replay indices (zero tolerance)
///
///   bench_compare --throughput <baseline.json> <candidate.json>
///       [--tol <frac>]        allowed relative items/sec drop (0.5)
///       [--improve-tol <frac>] speedup fraction that earns an advisory
///                              note, never a failure (0.5)
///       [--structural]        skip the rate gate (coverage + hashes only)
///       [--hash require|ignore] per-cell estimate fingerprint gate
///                              (ignore; require is the same-machine
///                              scalar-vs-AVX2 / thread determinism gate)
///
///   bench_compare --tradeoff <baseline.json> <candidate.json>
///       [--err-tol <frac>]      lateral-error relative tolerance (0.10)
///       [--err-slack-cm <cm>]   lateral-error absolute slack     (1.0)
///       [--cost-tol <frac>]     compute-cost relative tolerance  (0.10)
///       [--cost-slack <units>]  compute-cost absolute slack      (2000)
///       [--improve-tol <frac>]  improvement that excuses the other
///                               axis regressing (0.05)
///       [--no-headline]         skip the graceful-degradation headline
///                               gate (mixed-schema comparisons)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "eval/bench_compare.hpp"
#include "eval/benchmark_json.hpp"
#include "eval/frontier/frontier_json.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <candidate.json>\n"
               "  [--lat-tol <frac>] [--lat-slack-cm <cm>]\n"
               "  [--p99-tol <frac>] [--p99-slack-ms <ms>]\n"
               "  [--reloc-tol <frac>] [--reloc-slack-s <s>]\n"
               "  [--no-recovery-gate]\n"
               "  [--hash require|ignore] [--allow-new-crashes]\n"
               "or:    %s --frontier <baseline.json> <candidate.json>\n"
               "  [--sev-tol <sev>] [--exact]\n"
               "or:    %s --throughput <baseline.json> <candidate.json>\n"
               "  [--tol <frac>] [--improve-tol <frac>] [--structural]\n"
               "  [--hash require|ignore]\n"
               "or:    %s --tradeoff <baseline.json> <candidate.json>\n"
               "  [--err-tol <frac>] [--err-slack-cm <cm>]\n"
               "  [--cost-tol <frac>] [--cost-slack <units>]\n"
               "  [--improve-tol <frac>] [--no-headline]\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

bool parse_double(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

int run_frontier_compare(const std::string& baseline_path,
                         const std::string& candidate_path,
                         const srl::frontier::FrontierCompareThresholds& tol) {
  using namespace srl;
  const std::optional<frontier::FrontierDocument> baseline =
      frontier::read_frontier_json(baseline_path);
  if (!baseline) {
    std::fprintf(stderr, "baseline %s: unreadable or not a %s document\n",
                 baseline_path.c_str(), frontier::kFrontierSchema);
    return 2;
  }
  const std::optional<frontier::FrontierDocument> candidate =
      frontier::read_frontier_json(candidate_path);
  if (!candidate) {
    std::fprintf(stderr, "candidate %s: unreadable or not a %s document\n",
                 candidate_path.c_str(), frontier::kFrontierSchema);
    return 2;
  }

  const CompareReport report =
      frontier::compare_frontier(*baseline, *candidate, tol);
  for (const CompareFailure& failure : report.failures) {
    std::fprintf(stderr, "FAIL %s\n", failure.describe().c_str());
  }
  std::printf("bench_compare --frontier: %d points compared%s — %s\n",
              report.cells_compared, tol.require_identical ? " (exact)" : "",
              report.ok() ? "PASS"
                          : ("FAIL (" + std::to_string(report.failures.size()) +
                             " regressions)")
                                .c_str());
  return report.ok() ? 0 : 1;
}

int run_throughput_compare(const std::string& baseline_path,
                           const std::string& candidate_path,
                           const srl::ThroughputThresholds& tol) {
  using namespace srl;
  const std::optional<ThroughputDocument> baseline =
      read_throughput_json(baseline_path);
  if (!baseline) {
    std::fprintf(stderr, "baseline %s: unreadable or not a %s document\n",
                 baseline_path.c_str(), kBenchThroughputSchema);
    return 2;
  }
  const std::optional<ThroughputDocument> candidate =
      read_throughput_json(candidate_path);
  if (!candidate) {
    std::fprintf(stderr, "candidate %s: unreadable or not a %s document\n",
                 candidate_path.c_str(), kBenchThroughputSchema);
    return 2;
  }

  const CompareReport report = compare_throughput(*baseline, *candidate, tol);
  for (const std::string& note : report.notes) {
    std::printf("note: %s\n", note.c_str());
  }
  for (const CompareFailure& failure : report.failures) {
    std::fprintf(stderr, "FAIL %s\n", failure.describe().c_str());
  }
  std::printf("bench_compare --throughput: %d cells, %d fingerprints "
              "compared%s — %s\n",
              report.cells_compared, report.hashes_compared,
              tol.structural_only ? " (structural)" : "",
              report.ok() ? "PASS"
                          : ("FAIL (" + std::to_string(report.failures.size()) +
                             " regressions)")
                                .c_str());
  return report.ok() ? 0 : 1;
}

int run_tradeoff_compare(const std::string& baseline_path,
                         const std::string& candidate_path,
                         const srl::TradeoffThresholds& tol) {
  using namespace srl;
  const std::optional<BenchDocument> baseline = read_bench_json(baseline_path);
  if (!baseline) {
    std::fprintf(stderr, "baseline %s: unreadable or not a %s document\n",
                 baseline_path.c_str(), kBenchRobustnessSchema);
    return 2;
  }
  const std::optional<BenchDocument> candidate =
      read_bench_json(candidate_path);
  if (!candidate) {
    std::fprintf(stderr, "candidate %s: unreadable or not a %s document\n",
                 candidate_path.c_str(), kBenchRobustnessSchema);
    return 2;
  }

  const CompareReport report = compare_tradeoff(*baseline, *candidate, tol);
  for (const std::string& note : report.notes) {
    std::printf("note: %s\n", note.c_str());
  }
  for (const CompareFailure& failure : report.failures) {
    std::fprintf(stderr, "FAIL %s\n", failure.describe().c_str());
  }
  std::printf("bench_compare --tradeoff: %d governed cells compared — %s\n",
              report.cells_compared,
              report.ok() ? "PASS"
                          : ("FAIL (" + std::to_string(report.failures.size()) +
                             " regressions)")
                                .c_str());
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace srl;

  std::string paths[2];
  int n_paths = 0;
  CompareThresholds thresholds;
  bool frontier_mode = false;
  frontier::FrontierCompareThresholds frontier_tol;
  bool throughput_mode = false;
  ThroughputThresholds throughput_tol;
  bool tradeoff_mode = false;
  TradeoffThresholds tradeoff_tol;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--frontier") == 0) {
      frontier_mode = true;
    } else if (std::strcmp(arg, "--throughput") == 0) {
      throughput_mode = true;
    } else if (std::strcmp(arg, "--tradeoff") == 0) {
      tradeoff_mode = true;
    } else if (std::strcmp(arg, "--tol") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_double(v, throughput_tol.tol_frac))
        return usage(argv[0]);
    } else if (std::strcmp(arg, "--improve-tol") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_double(v, throughput_tol.improve_frac))
        return usage(argv[0]);
      tradeoff_tol.improve_frac = throughput_tol.improve_frac;
    } else if (std::strcmp(arg, "--err-tol") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_double(v, tradeoff_tol.err_tol_frac))
        return usage(argv[0]);
    } else if (std::strcmp(arg, "--err-slack-cm") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_double(v, tradeoff_tol.err_slack_cm))
        return usage(argv[0]);
    } else if (std::strcmp(arg, "--cost-tol") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_double(v, tradeoff_tol.cost_tol_frac))
        return usage(argv[0]);
    } else if (std::strcmp(arg, "--cost-slack") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_double(v, tradeoff_tol.cost_slack))
        return usage(argv[0]);
    } else if (std::strcmp(arg, "--no-headline") == 0) {
      tradeoff_tol.require_headline = false;
    } else if (std::strcmp(arg, "--structural") == 0) {
      throughput_tol.structural_only = true;
    } else if (std::strcmp(arg, "--sev-tol") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_double(v, frontier_tol.severity_tol))
        return usage(argv[0]);
    } else if (std::strcmp(arg, "--exact") == 0) {
      frontier_tol.require_identical = true;
    } else if (std::strcmp(arg, "--lat-tol") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_double(v, thresholds.lateral_tol_frac))
        return usage(argv[0]);
    } else if (std::strcmp(arg, "--lat-slack-cm") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_double(v, thresholds.lateral_slack_cm))
        return usage(argv[0]);
    } else if (std::strcmp(arg, "--p99-tol") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_double(v, thresholds.p99_tol_frac))
        return usage(argv[0]);
    } else if (std::strcmp(arg, "--p99-slack-ms") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_double(v, thresholds.p99_slack_ms))
        return usage(argv[0]);
    } else if (std::strcmp(arg, "--reloc-tol") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_double(v, thresholds.reloc_tol_frac))
        return usage(argv[0]);
    } else if (std::strcmp(arg, "--reloc-slack-s") == 0) {
      const char* v = next();
      if (v == nullptr || !parse_double(v, thresholds.reloc_slack_s))
        return usage(argv[0]);
    } else if (std::strcmp(arg, "--no-recovery-gate") == 0) {
      thresholds.gate_recovery = false;
    } else if (std::strcmp(arg, "--hash") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      if (std::strcmp(v, "require") == 0) {
        thresholds.require_hash_match = true;
        throughput_tol.require_hash_match = true;
      } else if (std::strcmp(v, "ignore") == 0) {
        thresholds.require_hash_match = false;
        throughput_tol.require_hash_match = false;
      } else {
        return usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--allow-new-crashes") == 0) {
      thresholds.allow_new_crashes = true;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return usage(argv[0]);
    } else if (n_paths < 2) {
      paths[n_paths++] = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (n_paths != 2) return usage(argv[0]);

  if (frontier_mode) return run_frontier_compare(paths[0], paths[1], frontier_tol);
  if (throughput_mode) {
    return run_throughput_compare(paths[0], paths[1], throughput_tol);
  }
  if (tradeoff_mode) {
    return run_tradeoff_compare(paths[0], paths[1], tradeoff_tol);
  }

  const std::optional<BenchDocument> baseline = read_bench_json(paths[0]);
  if (!baseline) {
    std::fprintf(stderr, "baseline %s: unreadable or not a %s document\n",
                 paths[0].c_str(), kBenchRobustnessSchema);
    return 2;
  }
  const std::optional<BenchDocument> candidate = read_bench_json(paths[1]);
  if (!candidate) {
    std::fprintf(stderr, "candidate %s: unreadable or not a %s document\n",
                 paths[1].c_str(), kBenchRobustnessSchema);
    return 2;
  }

  const CompareReport report = compare_bench(*baseline, *candidate, thresholds);
  for (const CompareFailure& failure : report.failures) {
    std::fprintf(stderr, "FAIL %s\n", failure.describe().c_str());
  }
  std::printf("bench_compare: %d cells, %d fingerprints compared — %s\n",
              report.cells_compared, report.hashes_compared,
              report.ok() ? "PASS"
                          : ("FAIL (" + std::to_string(report.failures.size()) +
                             " regressions)")
                                .c_str());
  return report.ok() ? 0 : 1;
}
