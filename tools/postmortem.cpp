// postmortem — render a flight-recorder black box (srl.blackbox/1) as a
// human-readable timeline, and optionally re-drive the captured sensor
// stream through a freshly rebuilt localizer stack to reproduce the episode
// bitwise.
//
// Usage:
//   postmortem <blackbox.json>              render provenance + timeline
//   postmortem <blackbox.json> --replay     also replay; exit 1 on hash
//                                           mismatch
//   postmortem <blackbox.json> --replay --threads N
//                                           replay at N filter lanes (the
//                                           hash must not change)

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "eval/postmortem.hpp"

int main(int argc, char** argv) {
  std::string path;
  bool do_replay = false;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--replay") {
      do_replay = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: postmortem <blackbox.json> [--replay] [--threads N]\n");
      return 0;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: postmortem <blackbox.json> [--replay] [--threads N]\n");
    return 2;
  }

  const std::optional<srl::Blackbox> box = srl::load_blackbox(path);
  if (!box.has_value()) {
    std::fprintf(stderr, "failed to load black box: %s\n", path.c_str());
    return 2;
  }
  std::fputs(srl::render_timeline(*box).c_str(), stdout);

  if (!do_replay) return 0;

  std::printf("\nreplaying captured stream (%s threads)...\n",
              threads > 0 ? std::to_string(threads).c_str() : "recorded");
  const srl::PostmortemReplay replay = srl::replay_blackbox(*box, threads);
  if (!replay.ok) {
    std::fprintf(stderr, "replay failed: %s\n", replay.error.c_str());
    return 2;
  }
  std::printf("replayed   : %" PRIu64 " ticks, estimate_hash 0x%016" PRIx64
              "\n",
              replay.ticks, replay.estimate_hash);
  if (replay.bitwise_match) {
    std::printf("verdict    : BITWISE MATCH — episode reproduced\n");
    return 0;
  }
  std::printf("verdict    : MISMATCH — %s\n", replay.error.c_str());
  return 1;
}
