/// \file srl_lint.cpp
/// \brief CLI for the project-specific determinism & real-time static
/// analysis pass (DESIGN.md §13).
///
/// Walks `src/`, `tools/`, `bench/` and `tests/` under the given repo root
/// (or takes the translation-unit list from a CMake compile database) and
/// prints every unsuppressed finding as `file:line: rule: message (fix:
/// hint)`, stable-sorted so reruns are byte-identical. Exit codes:
///
///   0  clean (no unsuppressed findings)
///   1  at least one finding
///   2  usage error / unreadable root
///
/// Usage:
///   srl_lint [<repo-root>]            root defaults to "."
///       [--compile-commands <json>]   TU list from a compile database
///                                     (headers still come from the walk;
///                                     silently falls back to the walk when
///                                     the database is missing/malformed)
///       [--report <path>]             also write the findings to a file
///                                     (the CI artifact)
///       [--suppressions]              print the audited suppression
///                                     inventory (file:line: rule: reason)
///                                     instead of linting verdict only
///       [--list-rules]                print the rule catalog and exit

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [<repo-root>] [--compile-commands <json>]\n"
               "  [--report <path>] [--suppressions] [--list-rules]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace srl;

  std::string root = ".";
  std::string db_path;
  std::string report_path;
  bool print_suppressions = false;
  bool list_rules = false;
  int n_roots = 0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--compile-commands") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      db_path = argv[++i];
    } else if (std::strcmp(arg, "--report") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      report_path = argv[++i];
    } else if (std::strcmp(arg, "--suppressions") == 0) {
      print_suppressions = true;
    } else if (std::strcmp(arg, "--list-rules") == 0) {
      list_rules = true;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return usage(argv[0]);
    } else if (n_roots++ == 0) {
      root = arg;
    } else {
      return usage(argv[0]);
    }
  }

  if (list_rules) {
    for (const lint::RuleInfo& rule : lint::rule_catalog()) {
      std::printf("%-22s %s\n", std::string{rule.id}.c_str(),
                  std::string{rule.summary}.c_str());
    }
    return 0;
  }

  std::error_code ec;
  if (!std::filesystem::is_directory(root, ec) || ec) {
    std::fprintf(stderr, "%s: not a directory\n", root.c_str());
    return 2;
  }
  if (!db_path.empty() && !std::filesystem::is_regular_file(db_path, ec)) {
    std::fprintf(stderr,
                 "note: %s not found, falling back to directory walk\n",
                 db_path.c_str());
    db_path.clear();
  }

  const std::vector<std::string> files =
      lint::collect_files_with_db(root, db_path);
  if (files.empty()) {
    std::fprintf(stderr, "%s: no lintable files under src/tools/bench/tests\n",
                 root.c_str());
    return 2;
  }
  const lint::TreeReport report = lint::lint_tree(root, files);

  if (print_suppressions) {
    std::fputs(lint::render_suppressions(report.suppressions).c_str(), stdout);
    std::printf("srl_lint: %zu suppressions in %d files\n",
                report.suppressions.size(), report.files_scanned);
    return report.findings.empty() ? 0 : 1;
  }

  const std::string rendered = lint::render_findings(report.findings);
  std::fputs(rendered.c_str(), stdout);
  if (!report_path.empty()) {
    std::ofstream out{report_path, std::ios::binary};
    out << rendered;
    if (!out) {
      std::fprintf(stderr, "%s: could not write report\n",
                   report_path.c_str());
      return 2;
    }
  }
  std::printf("srl_lint: %d files, %zu findings, %zu suppressions — %s\n",
              report.files_scanned, report.findings.size(),
              report.suppressions.size(),
              report.findings.empty() ? "CLEAN" : "FAIL");
  return report.findings.empty() ? 0 : 1;
}
