/// \file check_determinism.cpp
/// \brief Bitwise-determinism checker — the CI replay smoke.
///
/// Records a short closed-loop lap on a generated oval, then replays the
/// captured `SensorTrace` into SynPF under several regimes and demands
/// *bitwise* identical pose estimates and accuracy metrics:
///
///   1. twice from the same seed (run-to-run determinism),
///   2. across a textual save/restore of the full RNG state (the state is
///      the complete description of the stochastic process),
///   3. with and without a telemetry sink attached (instrumentation must
///      not perturb estimates — the PR-1 guarantee),
///   4. across worker-lane counts (n_threads 2 and 8 vs the serial path —
///      the PR-3 guarantee: parallel execution is bitwise invisible),
///   5. under a stacked fault pipeline (slip ramp + LiDAR dropout): the
///      corrupted trace hashes identically on re-corruption, a severity-0
///      pipeline is a bitwise no-op, and replaying the corrupted trace is
///      thread-count invariant (the PR-4 guarantee: fault injection is as
///      deterministic as everything it corrupts),
///   6. through a mid-run kidnap with the supervised recovery layer on top:
///      detection + recovery replay bitwise across reruns and worker-lane
///      counts, and a policies-off supervisor is a bitwise no-op on the
///      bare filter's estimates (the PR-5 guarantee: recovery draws come
///      from their own pinned substream schedule),
///   7. with the flight recorder + event journal attached to the supervised
///      kidnap replay: estimates stay bitwise identical to the recorder-off
///      run, and the recorder's per-tick estimate hash is invariant across
///      worker-lane counts (the PR-6 guarantee black-box replay rests on),
///   8. the frontier scenario sampler (eval/frontier): `sample(index)` is a
///      pure function of (seed, index) — call order, interleaving, and a
///      fresh sampler all land on the same scenario bits — and the
///      severity-bisected frontier search serializes to a byte-identical
///      artifact at 1 and 8 search lanes (the PR-7 guarantee the
///      `srl.frontier/1` CI gate rests on),
///   9. across SIMD backends: a replay forced to the scalar kernels and one
///      forced to the AVX2 kernels must land on the reference bits at 1 and
///      8 worker lanes (the SoA sensor-update guarantee: vectorization is
///      an implementation detail, never a numeric choice). Hosts without
///      AVX2 print an explicit SKIP for the vector half — never a silent
///      pass,
///  10. under the compute governor (PR-10): a governed replay — adaptive
///      sizing + shedding ladder under a squeezed budget — is bitwise
///      stable across reruns and worker-lane counts (resize draws come
///      from the pinned governor substream, keyed by update ordinal, and
///      virtual-cost accounting never reads a clock); a budget-off,
///      adaptive-off governor is a bitwise no-op on the bare filter; a
///      severity-0 compute-pressure stage moves nothing; and the
///      compute-pressure injector corrupts zero sensor bytes (its trace
///      hash equals the clean trace's),
///
/// and, in a SYNPF_CHECKED build, requires the whole lap to complete with
/// zero contract violations (reported through `telemetry::ContractMonitor`).
///
/// Exit code 0 on success; prints the first divergence otherwise. Usage:
///
///     check_determinism [max_sim_time_s]   (default 25)

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "common/simd.hpp"
#include "core/synpf.hpp"
#include "eval/dead_reckoning.hpp"
#include "eval/experiment.hpp"
#include "eval/fault_replay.hpp"
#include "eval/frontier/frontier_json.hpp"
#include "eval/frontier/frontier_search.hpp"
#include "eval/trace.hpp"
#include "fault/pipeline.hpp"
#include "governor/governor.hpp"
#include "gridmap/track_generator.hpp"
#include "recovery/supervised_localizer.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace srl;

bool bitwise_equal(const Pose2& a, const Pose2& b) {
  return std::memcmp(&a.x, &b.x, sizeof(double)) == 0 &&
         std::memcmp(&a.y, &b.y, sizeof(double)) == 0 &&
         std::memcmp(&a.theta, &b.theta, sizeof(double)) == 0;
}

/// Compare two replays bitwise: every pose estimate and the accuracy
/// metrics (latency fields are wall-clock and excluded by design).
bool compare(const SensorTrace::ReplayResult& a,
             const SensorTrace::ReplayResult& b, const char* label) {
  if (a.estimates.size() != b.estimates.size()) {
    std::fprintf(stderr, "[%s] estimate count differs: %zu vs %zu\n", label,
                 a.estimates.size(), b.estimates.size());
    return false;
  }
  for (std::size_t i = 0; i < a.estimates.size(); ++i) {
    if (!bitwise_equal(a.estimates[i], b.estimates[i])) {
      std::fprintf(stderr,
                   "[%s] estimate %zu diverges: (%.17g, %.17g, %.17g) vs "
                   "(%.17g, %.17g, %.17g)\n",
                   label, i, a.estimates[i].x, a.estimates[i].y,
                   a.estimates[i].theta, b.estimates[i].x, b.estimates[i].y,
                   b.estimates[i].theta);
      return false;
    }
  }
  if (std::memcmp(&a.pose_rmse_m, &b.pose_rmse_m, sizeof(double)) != 0 ||
      std::memcmp(&a.heading_rmse_rad, &b.heading_rmse_rad, sizeof(double)) !=
          0) {
    std::fprintf(stderr, "[%s] accuracy metrics diverge: %.17g/%.17g vs "
                 "%.17g/%.17g\n",
                 label, a.pose_rmse_m, a.heading_rmse_rad, b.pose_rmse_m,
                 b.heading_rmse_rad);
    return false;
  }
  std::printf("[%s] OK — %zu estimates bitwise-identical\n", label,
              a.estimates.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double max_sim_time = 25.0;
  if (argc > 1) max_sim_time = std::stod(argv[1]);

  // Contract accounting: in a SYNPF_CHECKED build every violation across the
  // recording lap and all replays is counted here and fails the run.
  telemetry::MetricsRegistry contract_registry;
  telemetry::ContractMonitor monitor{contract_registry};

  const Track track = TrackGenerator::oval(8.0, 2.5);
  SensorTrace trace;
  {
    ExperimentConfig cfg;
    cfg.laps = 1;
    cfg.max_sim_time = max_sim_time;
    cfg.profile.scale = 0.5;
    ExperimentRunner runner{track, cfg};
    DeadReckoning driver;
    runner.run(driver, &trace);
  }
  if (trace.scans().empty()) {
    std::fprintf(stderr, "recorded trace is empty\n");
    return 1;
  }
  std::printf("recorded %zu scans / %zu odometry increments (contracts %s)\n",
              trace.scans().size(), trace.odometry().size(),
              contracts::enabled() ? "ON" : "off");

  auto map = std::make_shared<const OccupancyGrid>(track.grid);
  SynPfConfig cfg;
  cfg.filter.n_particles = 600;
  // The reference regime is the exact serial path; regimes 4+ replay the
  // same trace over real worker pools and must land on the same bits.
  cfg.filter.n_threads = 1;

  bool ok = true;

  // 1. Same seed, two fresh filters.
  SynPf a{cfg, map, LidarConfig{}};
  const auto ra = trace.replay(a);
  {
    SynPf b{cfg, map, LidarConfig{}};
    const auto rb = trace.replay(b);
    ok = compare(ra, rb, "rerun") && ok;
  }

  // 2. Save the RNG state, scramble the generator, restore, replay: the
  // serialized state must capture the stochastic process completely.
  {
    SynPf c{cfg, map, LidarConfig{}};
    std::stringstream saved;
    saved << c.filter().rng();
    for (int i = 0; i < 1000; ++i) c.filter().rng().uniform();
    saved >> c.filter().rng();
    const auto rc = trace.replay(c);
    ok = compare(ra, rc, "rng-save-restore") && ok;
  }

  // 3. Telemetry attached: instrumentation must not perturb estimates.
  {
    telemetry::Telemetry telemetry;
    SynPf d{cfg, map, LidarConfig{}};
    const auto rd = trace.replay(d, telemetry.sink());
    ok = compare(ra, rd, "telemetry-attached") && ok;
  }

  // 4. Thread-count invariance: the per-particle stages fan out over 2 and
  // 8 worker lanes; estimates and metrics must still match the serial
  // reference bit for bit (slot substreams + static chunks + fixed-order
  // reductions — DESIGN.md §9).
  for (const int threads : {2, 8}) {
    SynPfConfig tcfg = cfg;
    tcfg.filter.n_threads = threads;
    SynPf t{tcfg, map, LidarConfig{}};
    const auto rt = trace.replay(t);
    char label[32];
    std::snprintf(label, sizeof(label), "threads=%d", threads);
    ok = compare(ra, rt, label) && ok;
  }

  // 5. Fault-injection determinism: a stacked pipeline corrupts the trace
  // to the same bytes every time (hash check), severity 0 never touches a
  // byte, and the corrupted trace replays thread-count invariant.
  {
    auto make_pipeline = [] {
      fault::FaultPipeline pipeline{0x7a017ULL, LidarConfig{}};
      pipeline.add("odom_slip_ramp", 0.7);
      pipeline.add("lidar_dropout", 0.5);
      return pipeline;
    };
    const SensorTrace corrupted = corrupt_trace(make_pipeline(), trace);
    const std::uint64_t h1 = trace_hash(corrupted);
    const std::uint64_t h2 = trace_hash(corrupt_trace(make_pipeline(), trace));
    if (h1 != h2) {
      std::fprintf(stderr,
                   "[fault-rerun] corrupted-trace hash diverges: "
                   "%016llx vs %016llx\n",
                   static_cast<unsigned long long>(h1),
                   static_cast<unsigned long long>(h2));
      ok = false;
    } else {
      std::printf("[fault-rerun] OK — corrupted trace hash %016llx stable\n",
                  static_cast<unsigned long long>(h1));
    }

    fault::FaultPipeline noop{0x7a017ULL, LidarConfig{}};
    noop.add("odom_slip_ramp", 0.0);
    noop.add("lidar_dropout", 0.0);
    if (trace_hash(corrupt_trace(noop, trace)) != trace_hash(trace)) {
      std::fprintf(stderr,
                   "[fault-noop] severity-0 pipeline altered the trace\n");
      ok = false;
    } else {
      std::printf("[fault-noop] OK — severity-0 pipeline is a bitwise no-op\n");
    }

    SynPf f1{cfg, map, LidarConfig{}};
    const auto rf = corrupted.replay(f1);
    {
      SynPfConfig tcfg = cfg;
      tcfg.filter.n_threads = 8;
      SynPf f8{tcfg, map, LidarConfig{}};
      const auto rf8 = corrupted.replay(f8);
      ok = compare(rf, rf8, "faulted-threads=8") && ok;
    }
  }

  // 6. Recovery determinism: replay a kidnapped trace through the
  // supervised stack. Recovery actions (injection, global relocalization)
  // draw from their own substream schedule, so the repaired trajectory must
  // be bitwise stable across reruns and thread counts — and a policies-off
  // supervisor must not move a single bit of the bare filter's estimates.
  {
    SensorTrace ktrace;
    {
      ExperimentConfig kcfg;
      kcfg.laps = 1000000;  // run the clock out; the kidnap ends laps anyway
      kcfg.max_sim_time = max_sim_time;
      kcfg.profile.scale = 0.5;
      ExperimentConfig::KidnapSpec kidnap;
      kidnap.t = max_sim_time * 0.3;
      kidnap.advance_frac = 0.25;
      kcfg.kidnaps.push_back(kidnap);
      ExperimentRunner runner{track, kcfg};
      DeadReckoning driver;
      runner.run(driver, &ktrace);
    }

    auto supervised_replay = [&](int threads) {
      SynPfConfig tcfg = cfg;
      tcfg.filter.n_threads = threads;
      SynPf pf{tcfg, map, LidarConfig{}};
      recovery::SupervisedLocalizer sup{pf, {}, map, LidarConfig{}};
      sup.bind_filter(&pf.filter());
      return ktrace.replay(sup);
    };
    const auto rk = supervised_replay(1);
    ok = compare(rk, supervised_replay(1), "recovery-rerun") && ok;
    ok = compare(rk, supervised_replay(8), "recovery-threads=8") && ok;

    SynPf bare{cfg, map, LidarConfig{}};
    const auto rbare = ktrace.replay(bare);
    {
      recovery::SupervisedLocalizerConfig off;
      off.policy = recovery::RecoveryPolicyConfig::none();
      SynPf inner{cfg, map, LidarConfig{}};
      recovery::SupervisedLocalizer sup{inner, off, map, LidarConfig{}};
      sup.bind_filter(&inner.filter());
      const auto roff = ktrace.replay(sup);
      ok = compare(rbare, roff, "recovery-off-noop") && ok;
    }

    // 7. Flight recorder: attaching the recorder + event journal to the
    // supervised kidnap replay must not move a single estimate bit (the
    // recorder observes, never steers), and the recorder's own per-tick
    // estimate hash must be thread-count invariant — the property the
    // postmortem bitwise-replay verdict rests on.
    {
      auto recorded_replay = [&](int threads,
                                 telemetry::FlightRecorder& recorder) {
        telemetry::Telemetry telemetry;
        SynPfConfig tcfg = cfg;
        tcfg.filter.n_threads = threads;
        SynPf pf{tcfg, map, LidarConfig{}};
        recovery::SupervisedLocalizer sup{pf, {}, map, LidarConfig{}};
        sup.bind_filter(&pf.filter());
        telemetry::Sink sink = telemetry.sink();
        sink.recorder = &recorder;
        return ktrace.replay(sup, sink);
      };
      telemetry::FlightRecorder rec1{telemetry::FlightRecorderConfig{}};
      const auto rr = recorded_replay(1, rec1);
      ok = compare(rk, rr, "recorder-noop") && ok;
      telemetry::FlightRecorder rec8{telemetry::FlightRecorderConfig{}};
      (void)recorded_replay(8, rec8);
      if (rec1.estimate_hash() != rec8.estimate_hash() ||
          rec1.ticks() != rec8.ticks()) {
        std::fprintf(stderr,
                     "[recorder-threads] estimate hash diverges across "
                     "thread counts: %016llx (%llu ticks) vs %016llx "
                     "(%llu ticks)\n",
                     static_cast<unsigned long long>(rec1.estimate_hash()),
                     static_cast<unsigned long long>(rec1.ticks()),
                     static_cast<unsigned long long>(rec8.estimate_hash()),
                     static_cast<unsigned long long>(rec8.ticks()));
        ok = false;
      } else {
        std::printf(
            "[recorder-threads] OK — estimate hash %016llx stable over "
            "%llu ticks at 1 and 8 lanes\n",
            static_cast<unsigned long long>(rec1.estimate_hash()),
            static_cast<unsigned long long>(rec1.ticks()));
      }
    }
  }

  // 8. Frontier sampler + search determinism. First the sampler: a scenario
  // must be a pure function of (seed, index) — rebuild it out of order, from
  // a fresh sampler, and after unrelated draws, and demand identical bits on
  // everything the replay key promises to reconstruct.
  {
    frontier::ScenarioSampler sampler{0xF407};
    bool sampler_ok = true;
    const std::uint32_t indices[] = {
        frontier::ScenarioKey{512, 0, 0, 0}.pack(),
        frontier::ScenarioKey{1024, 3, 1, 2}.pack(),
        frontier::ScenarioKey{1, 7, 2, 5}.pack(),
    };
    // Forward pass, then reversed on a fresh sampler.
    frontier::SampledScenario forward[3];
    for (int i = 0; i < 3; ++i) forward[i] = sampler.sample(indices[i]);
    frontier::ScenarioSampler fresh{0xF407};
    for (int i = 2; i >= 0; --i) {
      const frontier::SampledScenario again = fresh.sample(indices[i]);
      sampler_ok =
          sampler_ok && again.severity == forward[i].severity &&
          std::memcmp(&again.profile, &forward[i].profile,
                      sizeof(again.profile)) == 0 &&
          again.length_scale == forward[i].length_scale &&
          again.spec.half_width == forward[i].spec.half_width &&
          again.waypoint_radius == forward[i].waypoint_radius &&
          again.waypoint_jitter == forward[i].waypoint_jitter &&
          again.n_waypoints == forward[i].n_waypoints &&
          frontier::ScenarioSampler::replay_recipe(0xF407, indices[i]) ==
              frontier::ScenarioSampler::replay_recipe(0xF407, indices[i]);
    }
    if (!sampler_ok) {
      std::fprintf(stderr, "[frontier-sampler] scenario bits depend on call "
                           "order or sampler instance\n");
      ok = false;
    } else {
      std::printf("[frontier-sampler] OK — scenarios are pure functions of "
                  "(seed, index)\n");
    }

    // Then the search driver: a synthetic pure-function oracle keeps this
    // cheap under sanitizers while still exercising the combo fan-out and
    // per-index result writes. The serialized artifact must be
    // byte-identical at 1 and 8 search lanes.
    auto oracle = [](const std::string& localizer,
                     const frontier::SampledScenario& scenario) {
      frontier::FrontierEvaluation eval;
      const double threshold =
          (localizer == "SynPF" ? 0.63 : 0.27) + 0.05 * scenario.key.axis;
      eval.failed = scenario.severity >= threshold;
      eval.lateral_mean_cm = 3.0 + 40.0 * scenario.severity;
      eval.final_pose_error_m = eval.failed ? 2.5 : 0.1;
      eval.divergence_episodes = eval.failed ? 1 : 0;
      eval.recoveries = 0;
      return eval;
    };
    frontier::FrontierSearchConfig fcfg;
    fcfg.axes = {0, 1, 2, 3};
    fcfg.track_classes = {0, 1};
    fcfg.bisect_iterations = 6;
    auto artifact_at = [&](int threads) {
      frontier::FrontierSearchConfig c = fcfg;
      c.search_threads = threads;
      frontier::FrontierDocument doc;
      doc.result = run_frontier_search(c, oracle);
      doc.has_headline = frontier::compute_frontier_headline(
          doc.result, "odom_slip_ramp", "club", doc.headline);
      return frontier_to_json(doc).dump();
    };
    const std::string one = artifact_at(1);
    const std::string eight = artifact_at(8);
    if (one != eight) {
      std::fprintf(stderr, "[frontier-threads] artifact bytes differ between "
                           "1 and 8 search lanes (%zu vs %zu bytes)\n",
                   one.size(), eight.size());
      ok = false;
    } else {
      std::printf("[frontier-threads] OK — %zu-byte artifact identical at 1 "
                  "and 8 search lanes\n",
                  one.size());
    }
  }

  // 9. SIMD dispatch determinism: force each backend explicitly (the
  // ambient reference `ra` ran under whatever SRL_SIMD / the CPU resolved
  // to) and demand the reference bits back at 1 and 8 worker lanes. The
  // scalar half always runs; the vector half skips *loudly* on hosts
  // without AVX2 so a fleet of scalar-only runners can't fake coverage.
  {
    auto replay_forced = [&](simd::Backend backend, int threads) {
      simd::force(backend);
      SynPfConfig tcfg = cfg;
      tcfg.filter.n_threads = threads;
      SynPf pf{tcfg, map, LidarConfig{}};
      const auto r = trace.replay(pf);
      simd::reset();
      return r;
    };
    ok = compare(ra, replay_forced(simd::Backend::kScalar, 1),
                 "simd-scalar") &&
         ok;
    ok = compare(ra, replay_forced(simd::Backend::kScalar, 8),
                 "simd-scalar-threads=8") &&
         ok;
    if (simd::cpu_has_avx2()) {
      ok = compare(ra, replay_forced(simd::Backend::kAvx2, 1), "simd-avx2") &&
           ok;
      ok = compare(ra, replay_forced(simd::Backend::kAvx2, 8),
                   "simd-avx2-threads=8") &&
           ok;
    } else {
      std::printf(
          "[simd] SKIP — host CPU lacks AVX2; scalar-vs-vector cross-check "
          "not run (scalar halves above still verified)\n");
    }
  }

  // 10. Compute-governor determinism (PR-10). The governed stack draws its
  // resize schedule from the pinned kPfStreamGovernor substream keyed by
  // the governor's own update ordinal and accounts cost in virtual work
  // units — no clock, no thread count, no draw history enters a decision —
  // so a governed replay must be as replayable as the bare filter.
  {
    // The injector never touches a sensor byte: the compute-pressure trace
    // hashes identically to the clean trace at full severity.
    {
      fault::FaultPipeline pressure_only{0x7a017ULL, LidarConfig{}};
      pressure_only.add("compute_pressure", 1.0);
      if (trace_hash(corrupt_trace(pressure_only, trace)) !=
          trace_hash(trace)) {
        std::fprintf(stderr, "[governor-trace] compute_pressure corrupted "
                             "sensor bytes\n");
        ok = false;
      } else {
        std::printf("[governor-trace] OK — compute_pressure leaves the "
                    "sensor stream untouched\n");
      }
    }

    // A squeezed budget (about two thirds of the nominal workload) under
    // 0.8 pressure walks the full shedding ladder: stride, clamp, and
    // skip-resample all engage, so the replay exercises every knob.
    auto governed_replay = [&](int threads, double budget_ms, bool adaptive,
                               bool shed, double pressure_severity) {
      SynPfConfig tcfg = cfg;
      tcfg.filter.n_threads = threads;
      SynPf pf{tcfg, map, LidarConfig{}};
      fault::FaultPipeline pipeline{0x7a017ULL, LidarConfig{}};
      if (pressure_severity >= 0.0) {
        pipeline.add("compute_pressure", pressure_severity);
      }
      governor::GovernorConfig gcfg;
      gcfg.budget_ms = budget_ms;
      gcfg.adaptive = adaptive;
      gcfg.shed = shed;
      governor::GovernedLocalizer gov{pf, gcfg};
      gov.bind_filter(&pf.filter());
      gov.bind_pressure(&pipeline);
      return trace.replay(gov);
    };
    const auto rg = governed_replay(1, 0.5, true, true, 0.8);
    ok = compare(rg, governed_replay(1, 0.5, true, true, 0.8),
                 "governor-rerun") &&
         ok;
    ok = compare(rg, governed_replay(8, 0.5, true, true, 0.8),
                 "governor-threads=8") &&
         ok;

    // Budget off + adaptive off is the strict no-op contract: the wrapper
    // forwards untouched and the bare reference bits come back.
    ok = compare(ra, governed_replay(1, 0.0, false, false, 0.8),
                 "governor-off-noop") &&
         ok;

    // A severity-0 pressure stage must decide exactly like no stage at
    // all: the envelope evaluates to zero, so the ladder sees zero squeeze.
    ok = compare(governed_replay(1, 0.5, true, true, -1.0),
                 governed_replay(1, 0.5, true, true, 0.0),
                 "governor-severity0") &&
         ok;
  }

  const std::uint64_t violations = monitor.violations();
  if (violations != 0) {
    std::fprintf(stderr, "%llu contract violations during the run\n",
                 static_cast<unsigned long long>(violations));
    ok = false;
  } else if (contracts::enabled()) {
    std::printf("[contracts] OK — recording laps + all replays, "
                "zero violations\n");
  }

  if (!ok) return 1;
  std::printf("determinism check passed (rmse %.3f m)\n", ra.pose_rmse_m);
  return 0;
}
